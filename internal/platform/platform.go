// Package platform defines the driver API through which the Graphalytics
// harness talks to a graph-analysis platform (component 10 of the
// architecture in Figure 1 of the paper).
//
// A driver is instructed by the harness to upload graphs to the system
// under test (including any pre-processing into a platform-specific
// format), to execute an algorithm with a specific set of parameters on an
// uploaded graph, and to return the output for validation. Every platform
// also produces a Granula performance archive per job, from which the
// harness derives fine-grained metrics such as processing time.
package platform

import (
	"context"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/cluster"
	"graphalytics/internal/granula"
	"graphalytics/internal/graph"
)

// RunConfig selects the resources for a job: the system under test.
type RunConfig struct {
	// Threads is the number of worker threads per machine; zero means 1.
	Threads int
	// Machines is the number of simulated machines; zero means 1.
	// Non-distributed platforms reject Machines > 1.
	Machines int
	// MemoryPerMachine is the per-machine memory budget in bytes for the
	// engine's data structures; zero means unlimited.
	MemoryPerMachine int64
	// Net is the interconnect model for distributed runs.
	Net cluster.NetworkModel
}

// ClusterConfig converts the run configuration into a simulated deployment
// configuration.
func (c RunConfig) ClusterConfig() cluster.Config {
	return cluster.Config{
		Machines:         c.Machines,
		Threads:          c.Threads,
		MemoryPerMachine: c.MemoryPerMachine,
		Net:              c.Net,
	}.Normalize()
}

// Result is what a platform returns for one executed job.
type Result struct {
	// Output holds the per-vertex algorithm results for validation.
	Output *algorithms.Output
	// Archive is the Granula performance archive of the job.
	Archive *granula.Archive
	// ProcessingTime is Tproc: the time required to execute the actual
	// algorithm, excluding platform overhead such as resource allocation
	// or graph loading. For distributed runs it is the simulated parallel
	// time (measured compute plus modeled network).
	ProcessingTime time.Duration
	// Makespan is the duration of the whole Execute call.
	Makespan time.Duration
	// NetworkTime is the modeled network component of ProcessingTime.
	NetworkTime time.Duration
	// Rounds is the number of synchronization rounds (supersteps,
	// iterations) the engine ran.
	Rounds int
	// PeakMemory is the highest per-machine engine memory registration.
	PeakMemory int64
}

// Uploaded is a graph that has been converted into a platform's internal
// format, ready for repeated algorithm executions.
type Uploaded interface {
	// Graph returns the original uploaded graph.
	Graph() *graph.Graph
	// Cluster returns the simulated deployment holding the graph.
	Cluster() *cluster.Cluster
	// Free releases the platform's resources for this graph.
	Free()
}

// Platform is the driver interface implemented by every graph-analysis
// engine in this repository.
type Platform interface {
	// Name returns the unique platform name, e.g. "pregel".
	Name() string
	// Description is a one-line description shown in reports.
	Description() string
	// Distributed reports whether the platform can use more than one
	// machine.
	Distributed() bool
	// Supports reports whether the platform implements the algorithm
	// (mirroring the paper: e.g. the push-pull engine has no LCC).
	Supports(a algorithms.Algorithm) bool
	// Upload pre-processes the graph into the platform's format.
	Upload(g *graph.Graph, cfg RunConfig) (Uploaded, error)
	// Execute runs one algorithm job on an uploaded graph. The context
	// carries the SLA deadline; engines must abandon work once it is
	// cancelled.
	Execute(ctx context.Context, up Uploaded, a algorithms.Algorithm, p algorithms.Params) (*Result, error)
}

// ContextUploader is implemented by platforms whose Upload honors a
// context: a pathological upload can then be cancelled by the harness's
// SLA timer while it runs, instead of only being checked after it
// returns. All engines in this repository implement it; external drivers
// may omit it and fall back to a post-upload check (see UploadContext).
type ContextUploader interface {
	// UploadContext is Upload gated by ctx: it returns a wrapped context
	// error — without leaking resources — once ctx ends.
	UploadContext(ctx context.Context, g *graph.Graph, cfg RunConfig) (Uploaded, error)
}

// UploadContext uploads g through p under ctx. Platforms implementing
// ContextUploader are cancelled mid-upload; for the rest the upload runs
// to completion and ctx is checked afterwards, freeing the upload if the
// context ended in the meantime. The returned error wraps ctx's error in
// both cases, so callers classify cancellation uniformly.
func UploadContext(ctx context.Context, p Platform, g *graph.Graph, cfg RunConfig) (Uploaded, error) {
	if cu, ok := p.(ContextUploader); ok {
		return cu.UploadContext(ctx, g, cfg)
	}
	up, err := p.Upload(g, cfg)
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		up.Free()
		return nil, fmt.Errorf("platform: upload cancelled: %w", cerr)
	}
	return up, nil
}

// ErrNotDistributed is returned when a single-machine platform is asked to
// run on multiple machines.
var ErrNotDistributed = fmt.Errorf("platform: not a distributed platform")

// ErrUnsupported is returned when a platform does not implement the
// requested algorithm.
var ErrUnsupported = fmt.Errorf("platform: algorithm not supported")

// BaseUpload is a helper embedding for Uploaded implementations.
type BaseUpload struct {
	G  *graph.Graph
	Cl *cluster.Cluster
}

// Graph returns the uploaded graph.
func (b *BaseUpload) Graph() *graph.Graph { return b.G }

// Cluster returns the simulated deployment.
func (b *BaseUpload) Cluster() *cluster.Cluster { return b.Cl }

// Free is a no-op default; engines with registered memory override it.
func (b *BaseUpload) Free() {}

// NewResult assembles a Result from a finished tracker, the job's cluster,
// and the algorithm output. It sets ProcessingTime from the archive's
// ProcessGraph phase and pulls network/round/memory statistics from the
// cluster.
func NewResult(t *granula.Tracker, cl *cluster.Cluster, out *algorithms.Output) *Result {
	a := t.Finish()
	return &Result{
		Output:         out,
		Archive:        a,
		ProcessingTime: a.ProcessingTime(),
		Makespan:       a.Makespan(),
		NetworkTime:    cl.NetworkTime(),
		Rounds:         cl.Rounds(),
		PeakMemory:     cl.PeakMemory(),
	}
}

// registry of available platforms, keyed by name.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Platform)
)

// Register adds a platform to the global registry; registering a duplicate
// name panics, as it indicates a programming error at start-up.
func Register(p Platform) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name()]; dup {
		panic(fmt.Sprintf("platform: duplicate registration of %q", p.Name()))
	}
	registry[p.Name()] = p
}

// Get looks up a registered platform by name.
func Get(name string) (Platform, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (have %v)", name, namesLocked())
	}
	return p, nil
}

// Names returns the registered platform names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	return slices.Sorted(maps.Keys(registry))
}

// All returns the registered platforms sorted by name.
func All() []Platform {
	names := Names()
	out := make([]Platform, 0, len(names))
	for _, n := range names {
		p, _ := Get(n)
		out = append(out, p)
	}
	return out
}

// CheckContext returns the context error, wrapped so engines can surface
// SLA cancellation uniformly.
func CheckContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("platform: job cancelled: %w", err)
	}
	return nil
}
