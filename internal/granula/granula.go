// Package granula reimplements Granula, the fine-grained performance
// evaluation framework of Graphalytics (Section 2.5.2 of the paper). It has
// three modules:
//
//   - the modeler, which lets platform experts define the phase structure
//     of a job once (phases defined recursively as collections of smaller
//     phases) so evaluation is automated;
//   - the archiver, which captures a performance archive for each job —
//     complete (all observed and derived results), descriptive (readable by
//     non-experts) and examinable (every result traceable to a source);
//   - the visualizer, which renders an archive for human consumption.
//
// Engines record phases through a Tracker while a job runs; the harness
// derives the benchmark's fine-grained metrics (such as processing time)
// from the resulting archive.
package granula

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Standard phase names used by all platform performance models. Platforms
// may nest arbitrary sub-phases below these.
const (
	PhaseSetup   = "Setup"        // resource allocation, engine start-up
	PhaseLoad    = "LoadGraph"    // moving the uploaded graph into the engine
	PhaseProcess = "ProcessGraph" // the algorithm itself; its duration is Tproc
	PhaseOffload = "Offload"      // collecting output from the engine
)

// Operation is one node of a performance archive: a named phase with a
// measured wall-clock interval, optional modeled duration, free-form
// attributes, and sub-phases.
type Operation struct {
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Info  map[string]string `json:"info,omitempty"`
	// Modeled, when non-zero, replaces the measured duration when the
	// phase's cost is computed by a model rather than a stopwatch (the
	// cluster simulator uses this for distributed processing time, which
	// combines measured compute with modeled network transfers).
	Modeled  time.Duration `json:"modeled,omitempty"`
	Children []*Operation  `json:"children,omitempty"`
}

// Measured returns the wall-clock duration of the phase.
func (o *Operation) Measured() time.Duration { return o.End.Sub(o.Start) }

// Duration returns the effective duration: Modeled when set, otherwise the
// measured wall-clock interval.
func (o *Operation) Duration() time.Duration {
	if o.Modeled != 0 {
		return o.Modeled
	}
	return o.Measured()
}

// Child returns the first direct sub-phase with the given name, or nil.
func (o *Operation) Child(name string) *Operation {
	for _, c := range o.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Find descends through the archive along the given path of phase names.
func (o *Operation) Find(path ...string) *Operation {
	cur := o
	for _, name := range path {
		cur = cur.Child(name)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// SetInfo attaches a key/value attribute to the phase.
func (o *Operation) SetInfo(key, value string) {
	if o.Info == nil {
		o.Info = make(map[string]string)
	}
	o.Info[key] = value
}

// Archive is the performance archive of a single job.
type Archive struct {
	Job      string     `json:"job"`
	Platform string     `json:"platform"`
	Root     *Operation `json:"root"`
}

// ProcessingTime returns the duration of the ProcessGraph phase (Tproc),
// the benchmark's primary performance indicator, or zero when the phase is
// absent.
func (a *Archive) ProcessingTime() time.Duration {
	if a.Root == nil {
		return 0
	}
	if p := a.Root.Find(PhaseProcess); p != nil {
		return p.Duration()
	}
	return 0
}

// Makespan returns the duration of the whole job operation.
func (a *Archive) Makespan() time.Duration {
	if a.Root == nil {
		return 0
	}
	return a.Root.Duration()
}

// WriteJSON serializes the archive.
func (a *Archive) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("granula: encode archive: %w", err)
	}
	return nil
}

// ReadArchive deserializes an archive produced by WriteJSON.
func ReadArchive(r io.Reader) (*Archive, error) {
	var a Archive
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("granula: decode archive: %w", err)
	}
	return &a, nil
}

// Tracker builds an archive while a job runs. It is used by a single
// orchestrating goroutine and is not safe for concurrent use.
type Tracker struct {
	archive *Archive
	stack   []*Operation
	now     func() time.Time
}

// NewTracker starts tracking a job on a platform; the root operation opens
// immediately.
func NewTracker(job, platform string) *Tracker {
	t := &Tracker{now: time.Now}
	root := &Operation{Name: job}
	t.archive = &Archive{Job: job, Platform: platform, Root: root}
	t.stack = []*Operation{root}
	root.Start = t.now()
	return t
}

// Begin opens a sub-phase under the current phase.
func (t *Tracker) Begin(name string) {
	op := &Operation{Name: name, Start: t.now()}
	cur := t.stack[len(t.stack)-1]
	cur.Children = append(cur.Children, op)
	t.stack = append(t.stack, op)
}

// End closes the innermost open phase. Ending the root is an error kept
// silent until Finish; extra Ends are ignored.
func (t *Tracker) End() {
	if len(t.stack) <= 1 {
		return
	}
	op := t.stack[len(t.stack)-1]
	op.End = t.now()
	t.stack = t.stack[:len(t.stack)-1]
}

// Phase runs fn inside a sub-phase named name.
func (t *Tracker) Phase(name string, fn func()) {
	t.Begin(name)
	defer t.End()
	fn()
}

// Current returns the innermost open operation, so callers can attach
// attributes or a modeled duration.
func (t *Tracker) Current() *Operation { return t.stack[len(t.stack)-1] }

// Annotate adds an attribute to the innermost open phase.
func (t *Tracker) Annotate(key, value string) { t.Current().SetInfo(key, value) }

// Finish closes all open phases and returns the completed archive. All
// timestamps are normalized to wall-clock time (Go's monotonic reading is
// stripped), so durations computed from a serialized archive match the
// live ones — a requirement for examinable, traceable archives.
func (t *Tracker) Finish() *Archive {
	end := t.now()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i].End.IsZero() {
			t.stack[i].End = end
		}
	}
	t.stack = t.stack[:1]
	normalize(t.archive.Root)
	return t.archive
}

// normalize strips monotonic clock readings from the tree.
func normalize(op *Operation) {
	op.Start = op.Start.Round(0)
	op.End = op.End.Round(0)
	for _, c := range op.Children {
		normalize(c)
	}
}

// Render writes a human-readable tree view of the archive: every phase with
// its duration, its share of the parent phase, and its attributes. This is
// the text-mode counterpart of the Granula visualizer's web interface.
func Render(w io.Writer, a *Archive) error {
	if _, err := fmt.Fprintf(w, "job %q on platform %q — makespan %v\n", a.Job, a.Platform, a.Makespan().Round(time.Microsecond)); err != nil {
		return err
	}
	if a.Root == nil {
		return nil
	}
	return renderOp(w, a.Root, "", a.Root.Duration())
}

func renderOp(w io.Writer, op *Operation, indent string, parent time.Duration) error {
	share := ""
	if parent > 0 && indent != "" {
		share = fmt.Sprintf(" (%4.1f%%)", 100*float64(op.Duration())/float64(parent))
	}
	modeled := ""
	if op.Modeled != 0 {
		modeled = fmt.Sprintf(" [modeled; measured %v]", op.Measured().Round(time.Microsecond))
	}
	if _, err := fmt.Fprintf(w, "%s%-24s %12v%s%s\n", indent, op.Name, op.Duration().Round(time.Microsecond), share, modeled); err != nil {
		return err
	}
	keys := make([]string, 0, len(op.Info))
	for k := range op.Info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s  · %s = %s\n", indent, k, op.Info[k]); err != nil {
			return err
		}
	}
	for _, c := range op.Children {
		if err := renderOp(w, c, indent+"  ", op.Duration()); err != nil {
			return err
		}
	}
	return nil
}
