package granula_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"graphalytics/internal/granula"
)

func buildArchive() *granula.Archive {
	t := granula.NewTracker("BFS/test", "native")
	t.Begin(granula.PhaseSetup)
	t.End()
	t.Begin(granula.PhaseLoad)
	t.End()
	t.Begin(granula.PhaseProcess)
	t.Begin("Superstep-0")
	t.Annotate("messages", "42")
	t.End()
	t.Begin("Superstep-1")
	t.End()
	t.End()
	t.Begin(granula.PhaseOffload)
	t.End()
	return t.Finish()
}

func TestTrackerBuildsTree(t *testing.T) {
	a := buildArchive()
	if a.Job != "BFS/test" || a.Platform != "native" {
		t.Fatalf("archive header wrong: %+v", a)
	}
	if len(a.Root.Children) != 4 {
		t.Fatalf("root has %d children, want 4", len(a.Root.Children))
	}
	proc := a.Root.Child(granula.PhaseProcess)
	if proc == nil {
		t.Fatal("ProcessGraph phase missing")
	}
	if len(proc.Children) != 2 {
		t.Fatalf("ProcessGraph has %d sub-phases, want 2", len(proc.Children))
	}
	if got := a.Root.Find(granula.PhaseProcess, "Superstep-0"); got == nil || got.Info["messages"] != "42" {
		t.Fatalf("nested find/annotation failed: %+v", got)
	}
	if a.Root.Find("nope") != nil {
		t.Fatal("Find of a missing phase must return nil")
	}
}

func TestDurationsAndMetrics(t *testing.T) {
	a := buildArchive()
	if a.Makespan() <= 0 {
		t.Fatal("makespan must be positive")
	}
	if a.ProcessingTime() <= 0 || a.ProcessingTime() > a.Makespan() {
		t.Fatalf("Tproc %v out of range (makespan %v)", a.ProcessingTime(), a.Makespan())
	}
}

func TestModeledDurationOverride(t *testing.T) {
	a := buildArchive()
	proc := a.Root.Child(granula.PhaseProcess)
	proc.Modeled = 5 * time.Second
	if a.ProcessingTime() != 5*time.Second {
		t.Fatalf("Tproc = %v, want the modeled 5s", a.ProcessingTime())
	}
	if proc.Measured() >= 5*time.Second {
		t.Fatal("measured duration should remain the stopwatch value")
	}
}

func TestFinishClosesOpenPhases(t *testing.T) {
	tr := granula.NewTracker("j", "p")
	tr.Begin("a")
	tr.Begin("b") // left open deliberately
	a := tr.Finish()
	op := a.Root.Find("a", "b")
	if op == nil || op.End.IsZero() {
		t.Fatal("Finish must close dangling phases")
	}
}

func TestEndOnRootIsIgnored(t *testing.T) {
	tr := granula.NewTracker("j", "p")
	tr.End() // extra End must not pop the root
	tr.Begin("a")
	tr.End()
	a := tr.Finish()
	if len(a.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(a.Root.Children))
	}
}

func TestPhaseHelper(t *testing.T) {
	tr := granula.NewTracker("j", "p")
	ran := false
	tr.Phase("work", func() { ran = true })
	a := tr.Finish()
	if !ran || a.Root.Child("work") == nil {
		t.Fatal("Phase must run the function inside a named phase")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := buildArchive()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := granula.ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Job != a.Job || back.Platform != a.Platform {
		t.Fatalf("header lost in round trip: %+v", back)
	}
	if back.Root.Find(granula.PhaseProcess, "Superstep-0").Info["messages"] != "42" {
		t.Fatal("annotations lost in round trip")
	}
	if back.ProcessingTime() != a.ProcessingTime() {
		t.Fatalf("Tproc changed in round trip: %v vs %v", back.ProcessingTime(), a.ProcessingTime())
	}
}

func TestReadArchiveBadJSON(t *testing.T) {
	if _, err := granula.ReadArchive(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestModelValidate(t *testing.T) {
	a := buildArchive()
	m := granula.StandardModel("native")
	if err := m.Validate(a); err != nil {
		t.Fatalf("valid archive rejected: %v", err)
	}
	derived := m.Derive(a)
	if derived["Tproc"] != a.ProcessingTime() {
		t.Fatalf("derived Tproc = %v, want %v", derived["Tproc"], a.ProcessingTime())
	}

	wrongPlatform := granula.StandardModel("pregel")
	if err := wrongPlatform.Validate(a); err == nil {
		t.Fatal("platform mismatch must fail validation")
	}

	// Required phase missing.
	tr := granula.NewTracker("j", "native")
	tr.Begin(granula.PhaseSetup)
	tr.End()
	if err := m.Validate(tr.Finish()); err == nil {
		t.Fatal("archive without ProcessGraph must fail validation")
	}

	// Unknown top-level phase.
	tr = granula.NewTracker("j", "native")
	tr.Begin(granula.PhaseProcess)
	tr.End()
	tr.Begin("Mystery")
	tr.End()
	if err := m.Validate(tr.Finish()); err == nil {
		t.Fatal("archive with an unknown phase must fail validation")
	}
}

func TestRender(t *testing.T) {
	a := buildArchive()
	a.Root.Child(granula.PhaseProcess).Modeled = 3 * time.Second
	var buf bytes.Buffer
	if err := granula.Render(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BFS/test", "ProcessGraph", "Superstep-0", "messages = 42", "modeled"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
