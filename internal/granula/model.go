package granula

import (
	"fmt"
	"time"
)

// PhaseSpec is one node of a performance model: a named phase, its
// description for non-expert readers, whether a conforming archive must
// contain it, and its expected sub-phases.
type PhaseSpec struct {
	Name        string
	Description string
	Required    bool
	Children    []PhaseSpec
}

// Model is a platform performance model, defined once by a platform expert
// (the Granula "modeler" module) so that the evaluation of every job on
// that platform is automated.
type Model struct {
	Platform string
	Phases   []PhaseSpec
	// Metrics maps a derived-metric name to the path of the phase whose
	// duration defines it, e.g. "Tproc" -> [ProcessGraph].
	Metrics map[string][]string
}

// StandardModel returns the performance model shared by the engines in
// this repository: Setup, LoadGraph, ProcessGraph (required; defines
// Tproc) and Offload.
func StandardModel(platform string) *Model {
	return &Model{
		Platform: platform,
		Phases: []PhaseSpec{
			{Name: PhaseSetup, Description: "allocate engine resources and simulated machines"},
			{Name: PhaseLoad, Description: "move the uploaded graph into the engine's runtime structures"},
			{Name: PhaseProcess, Description: "execute the algorithm; excludes platform overhead", Required: true},
			{Name: PhaseOffload, Description: "collect per-vertex output from the engine"},
		},
		Metrics: map[string][]string{
			"Tproc": {PhaseProcess},
		},
	}
}

// Validate checks that an archive conforms to the model: required phases
// are present and no unknown top-level phases appear.
func (m *Model) Validate(a *Archive) error {
	if a.Platform != m.Platform {
		return fmt.Errorf("granula: archive for platform %q validated against model for %q", a.Platform, m.Platform)
	}
	if a.Root == nil {
		return fmt.Errorf("granula: archive has no root operation")
	}
	known := make(map[string]PhaseSpec, len(m.Phases))
	for _, p := range m.Phases {
		known[p.Name] = p
		if p.Required && a.Root.Child(p.Name) == nil {
			return fmt.Errorf("granula: required phase %q missing from archive", p.Name)
		}
	}
	for _, c := range a.Root.Children {
		if _, ok := known[c.Name]; !ok {
			return fmt.Errorf("granula: archive contains phase %q not in the %s model", c.Name, m.Platform)
		}
	}
	return nil
}

// Derive extracts the model's derived metrics from an archive. Metrics
// whose phase is absent are omitted.
func (m *Model) Derive(a *Archive) map[string]time.Duration {
	out := make(map[string]time.Duration, len(m.Metrics))
	for name, path := range m.Metrics {
		if op := a.Root.Find(path...); op != nil {
			out[name] = op.Duration()
		}
	}
	return out
}
