package workload

import (
	"context"
	"fmt"
	"sync"

	"graphalytics/internal/graph"
	"graphalytics/internal/graphstore"
)

// Dataset materialization goes through a graphstore.Store: per-fingerprint
// single-flight (concurrent jobs on different datasets generate in
// parallel — the old package cache held one mutex across generation and
// serialized them), an in-memory resident set, and optional on-disk CSR
// snapshots when the store is configured with a directory.

// defaultStore memoizes every generated graph in memory with no byte
// budget and no snapshot directory — the behavior the package always had,
// now concurrency-friendly.
var (
	defaultStoreOnce sync.Once
	defaultStoreVal  *graphstore.Store
)

// DefaultStore returns the process-wide store behind Load.
func DefaultStore() *graphstore.Store {
	defaultStoreOnce.Do(func() {
		defaultStoreVal = graphstore.New(graphstore.Options{})
	})
	return defaultStoreVal
}

// Load generates (or returns the cached) graph for a dataset ID using the
// default store.
func Load(id string) (*graph.Graph, error) {
	return LoadFrom(DefaultStore(), id)
}

// LoadFrom materializes a dataset through the given store, keyed by the
// dataset's fingerprint.
func LoadFrom(s *graphstore.Store, id string) (*graph.Graph, error) {
	r, err := GetFrom(s, id)
	return r.Graph, err
}

// GetFrom is LoadFrom returning the store's materialization details
// (source, elapsed time, footprint). Datasets with a Stream feed and a
// snapshot-backed store materialize out-of-core: edges spill to bounded
// disk runs and merge straight into the on-disk snapshot (Builder.BuildTo),
// so the full edge list never exists on the heap. Everything else goes
// through the in-memory generator.
func GetFrom(s *graphstore.Store, id string) (graphstore.Result, error) {
	d, err := ByID(id)
	if err != nil {
		return graphstore.Result{}, err
	}
	if d.Stream != nil && s.Dir() != "" {
		return s.GetStreamed(d.Fingerprint(), func(path string) error {
			b := graph.NewBuilder(d.Directed, d.Weighted)
			b.SetSpill(graph.SpillOptions{})
			if err := d.Stream(b); err != nil {
				return fmt.Errorf("workload: stream %s: %w", d.ID, err)
			}
			return b.BuildTo(path)
		})
	}
	return s.Get(d.Fingerprint(), func() (*graph.Graph, error) {
		g, err := d.Generate()
		if err != nil {
			return nil, fmt.Errorf("workload: generate %s: %w", d.ID, err)
		}
		return g, nil
	})
}

// Warm materializes every catalog dataset through the store on a bounded
// worker pool, reporting each outcome to onEach (which may be nil; calls
// are serialized). A canceled context stops scheduling new datasets;
// in-flight materializations finish, since other loads may join them. The
// first materialization error is returned after the pool drains, alongside
// any context error.
func Warm(ctx context.Context, s *graphstore.Store, parallel int, onEach func(id string, r graphstore.Result, err error)) error {
	ids := make([]string, 0, len(Catalog()))
	for _, d := range Catalog() {
		ids = append(ids, d.ID)
	}
	return WarmIDs(ctx, s, parallel, ids, onEach)
}

// WarmIDs is Warm over an explicit dataset list — the only way to warm
// out-of-core XL datasets, which Catalog (and therefore Warm) excludes.
func WarmIDs(ctx context.Context, s *graphstore.Store, parallel int, datasets []string, onEach func(id string, r graphstore.Result, err error)) error {
	if ctx == nil {
		//graphalint:ctxbg nil-ctx guard for deprecated ctx-less entry points; ctx-first callers never hit it
		ctx = context.Background()
	}
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(datasets) {
		parallel = len(datasets)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ids := make(chan string)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				r, err := GetFrom(s, id)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("workload: warm %s: %w", id, err)
				}
				if onEach != nil {
					onEach(id, r, err)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, id := range datasets {
		select {
		case ids <- id:
		case <-ctx.Done():
			break feed
		}
	}
	close(ids)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
