package workload

import (
	"fmt"

	"graphalytics/internal/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph500"
	"graphalytics/internal/xrand"
)

// The real-world datasets of Table 3 are not redistributable with this
// repository (and at up to two billion edges would not be runnable in CI),
// so each entry has a seeded stand-in generator that preserves the
// dataset's domain shape at roughly 1/10,000 of |V|+|E|:
//
//	R1 wiki-talk      directed, hub-skewed (admin talk pages)
//	R2 kgs            undirected, very dense, with a small separate
//	                  community containing the BFS root, so BFS covers
//	                  only ~10% of the graph (the property behind OpenG's
//	                  queue-based BFS win in Section 4.1)
//	R3 cit-patents    directed acyclic citation structure with locality
//	R4 dota-league    undirected, dense, weighted match graph
//	R5 com-friendster undirected social network (Datagen at scale)
//	R6 twitter_mpi    directed power-law follower graph (skewed R-MAT)

// wikiTalkStandIn models a user-talk network: a small core of very active
// editors touches most pages.
func wikiTalkStandIn() (*graph.Graph, error) {
	const vertices, edges = 239, 502
	rng := xrand.New(0x1a1c)
	b := graph.NewBuilder(true, false)
	b.SetName("wiki-talk-lite")
	b.SetOptions(graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	for v := 0; v < vertices; v++ {
		b.AddVertex(int64(v))
	}
	for i := 0; i < edges; i++ {
		u := rng.Float64()
		src := int(u * u * vertices) // editors are heavily skewed
		dst := rng.Intn(vertices)
		b.AddEdge(int64(src), int64(dst))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: wiki-talk stand-in: %w", err)
	}
	return g, nil
}

// kgsStandIn models the KGS game network: a dense main community of
// players plus a small isolated club containing the benchmark's BFS root,
// so that the BFS covers roughly 10% of the vertices.
func kgsStandIn() (*graph.Graph, error) {
	const (
		smallSize = 8  // contains the BFS root (vertex 2)
		bigSize   = 75 // dense main community
	)
	rng := xrand.New(0x6a5)
	b := graph.NewBuilder(false, false)
	b.SetName("kgs-lite")
	b.SetOptions(graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	for v := 0; v < smallSize+bigSize; v++ {
		b.AddVertex(int64(v))
	}
	// Small club: a ring so every member is reachable from the root.
	for v := 0; v < smallSize; v++ {
		b.AddEdge(int64(v), int64((v+1)%smallSize))
	}
	// Dense main community (players meet most other players).
	for i := smallSize; i < smallSize+bigSize; i++ {
		for j := i + 1; j < smallSize+bigSize; j++ {
			if rng.Float64() < 0.64 {
				b.AddEdge(int64(i), int64(j))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: kgs stand-in: %w", err)
	}
	return g, nil
}

// citPatentsStandIn models a citation network: a DAG in which every patent
// cites a handful of older patents, mostly recent ones.
func citPatentsStandIn() (*graph.Graph, error) {
	const (
		vertices      = 377
		citationsMean = 5
		window        = 60
	)
	rng := xrand.New(0xc17)
	b := graph.NewBuilder(true, false)
	b.SetName("cit-patents-lite")
	b.SetOptions(graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	for v := 0; v < vertices; v++ {
		b.AddVertex(int64(v))
	}
	for v := 1; v < vertices; v++ {
		k := 1 + rng.Intn(2*citationsMean)
		for c := 0; c < k; c++ {
			back := 1 + int(rng.Exp()*float64(window)/4)
			cited := v - back
			if cited < 0 {
				continue
			}
			b.AddEdge(int64(v), int64(cited))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: cit-patents stand-in: %w", err)
	}
	return g, nil
}

// dotaLeagueStandIn models a match network: a dense weighted graph of
// players who repeatedly play each other.
func dotaLeagueStandIn() (*graph.Graph, error) {
	const (
		vertices = 300
		matches  = 16 // partners per player
	)
	rng := xrand.New(0xd07a)
	b := graph.NewBuilder(false, true)
	b.SetName("dota-league-lite")
	b.SetOptions(graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	for v := 0; v < vertices; v++ {
		b.AddVertex(int64(v))
	}
	for v := 0; v < vertices; v++ {
		r := rng.Fork(uint64(v))
		for m := 0; m < matches; m++ {
			opp := r.Intn(vertices)
			if opp == v {
				continue
			}
			b.AddWeightedEdge(int64(v), int64(opp), r.Float64()*9+1)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: dota-league stand-in: %w", err)
	}
	return g, nil
}

// friendsterStandIn is the largest catalog graph: a Datagen social network
// with community structure, standing in for com-friendster.
func friendsterStandIn() (*graph.Graph, error) {
	res, err := datagen.Generate(datagen.Config{
		Persons:   6560,
		AvgDegree: 34,
		TargetCC:  0.10,
		Seed:      0xf12e,
		Weighted:  false,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: friendster stand-in: %w", err)
	}
	g := res.Graph
	return renameGraph(g, "com-friendster-lite")
}

// twitterStandIn is a skewed directed power-law follower graph.
func twitterStandIn() (*graph.Graph, error) {
	g, err := graph500.Generate(graph500.Config{
		Scale:      13,
		EdgeFactor: 24,
		Seed:       0x7177e2,
		A:          0.65, B: 0.15, C: 0.15,
		Directed: true,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: twitter stand-in: %w", err)
	}
	return renameGraph(g, "twitter-mpi-lite")
}

// renameGraph rebuilds the graph under a new name (graphs are immutable).
func renameGraph(g *graph.Graph, name string) (*graph.Graph, error) {
	b := graph.NewBuilder(g.Directed(), g.Weighted())
	b.SetName(name)
	b.SetOptions(graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	for _, id := range g.IDs() {
		b.AddVertex(id)
	}
	for _, e := range g.Edges() {
		b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
	}
	return b.Build()
}
