// Package workload defines the Graphalytics workload: the dataset catalog
// (Tables 3 and 4 of the paper), the per-dataset algorithm parameters of
// the benchmark description, the algorithm-survey data behind the
// two-stage workload selection (Table 1), and the renewal process that
// re-derives the reference class L (Section 2.4).
//
// The paper's datasets range up to two billion edges; this reproduction
// ships seeded stand-in generators that preserve each dataset's domain
// shape (directedness, weights, skew, density, component structure) at
// roughly 1/1000 scale, so the full benchmark runs on one developer
// machine. Scales and T-shirt classes are recomputed from the actual
// generated sizes.
package workload

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/datagen"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph500"
	"graphalytics/internal/graphstore"
	"graphalytics/internal/metrics"
)

// Dataset is one catalog entry: a named graph with the algorithm
// parameters the benchmark description assigns to it.
type Dataset struct {
	// ID is the paper's dataset identifier, e.g. "R4" or "D300".
	ID string
	// Name matches the paper's dataset name, e.g. "dota-league".
	Name string
	// Domain is the application domain from Table 3 ("Social",
	// "Knowledge", "Gaming") or "Synthetic" for Table 4 entries.
	Domain string
	// PaperScale is the scale the paper reports for the original dataset.
	PaperScale float64
	// Directed and Weighted describe the graph's shape.
	Directed, Weighted bool
	// Params carries the benchmark description's algorithm parameters
	// (BFS/SSSP root, iteration counts).
	Params algorithms.Params
	// Generate produces the stand-in graph; it is deterministic.
	Generate func() (*graph.Graph, error)
	// Stream, when set, feeds the dataset's edges into a builder without
	// materializing them, so the graph can be assembled out-of-core via
	// Builder.BuildTo. It must produce exactly the graph Generate does.
	Stream func(b *graph.Builder) error
	// OutOfCore marks datasets sized beyond comfortable heap residency.
	// They are excluded from Catalog() (and so from sweeps and Warm) but
	// remain resolvable by ID and warmable explicitly; materialization
	// prefers the Stream path through a snapshot-backed store.
	OutOfCore bool
}

// GeneratorVersion is the version of the stand-in generators as a whole.
// Bump it whenever any generator's output changes, so on-disk snapshots
// keyed by Fingerprint are invalidated instead of silently serving stale
// graphs.
const GeneratorVersion = 1

// Fingerprint identifies the exact bytes Generate would produce: the
// dataset ID plus the generator version. It is the graph store's cache
// key, on disk and in memory.
func (d Dataset) Fingerprint() string {
	return fmt.Sprintf("%s@g%d", d.ID, GeneratorVersion)
}

// ScaleShift rebases the T-shirt classes for the reproduction workload.
// The catalog's stand-ins are about 10^4 times smaller than the paper's
// datasets, so a lite graph of scale s plays the role of a paper graph of
// scale s + ScaleShift; classes are computed on the shifted scale so the
// catalog keeps the paper's labels (e.g. the D300 stand-in is class L).
// Re-deriving the class boundaries for the current hardware is exactly
// what the benchmark's renewal process prescribes (Section 2.4).
const ScaleShift = 4.0

// Scale returns the Graphalytics scale of a generated graph.
func Scale(g *graph.Graph) float64 {
	return metrics.Scale(g.NumVertices(), g.NumEdges())
}

// Class returns the T-shirt class of a generated graph on the
// reproduction's shifted scale.
func Class(g *graph.Graph) metrics.Class {
	return metrics.ClassOf(Scale(g) + ScaleShift)
}

// The catalog is assembled and indexed exactly once: entries (and their
// Generate closures) used to be re-allocated and linearly scanned on every
// ByID call, which is pure waste on the harness's hot path.
var (
	catalogOnce  sync.Once
	catalogData  []Dataset
	catalogIndex map[string]int
)

func initCatalog() {
	catalogOnce.Do(func() {
		catalogData = buildCatalog()
		catalogIndex = make(map[string]int, len(catalogData))
		for i, d := range catalogData {
			catalogIndex[d.ID] = i
		}
	})
}

// ByID returns the catalog entry with the given ID.
func ByID(id string) (Dataset, error) {
	initCatalog()
	if i, ok := catalogIndex[id]; ok {
		return catalogData[i], nil
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", id)
}

// Catalog returns every in-core dataset of the reproduction workload,
// real-world stand-ins first (Table 3), then synthetic (Table 4).
// Out-of-core XL entries are excluded — see FullCatalog. The returned
// slice is the caller's to reorder.
func Catalog() []Dataset {
	initCatalog()
	out := make([]Dataset, 0, len(catalogData))
	for _, d := range catalogData {
		if !d.OutOfCore {
			out = append(out, d)
		}
	}
	return out
}

// FullCatalog returns every dataset including the out-of-core XL
// entries, which only materialize comfortably through a snapshot-backed
// store with spill-to-disk building (see Dataset.Stream).
func FullCatalog() []Dataset {
	initCatalog()
	return append([]Dataset(nil), catalogData...)
}

// buildCatalog allocates the catalog entries; callers go through Catalog
// or ByID, which memoize it.
func buildCatalog() []Dataset {
	return []Dataset{
		// ---- Table 3: real-world dataset stand-ins ----
		{
			ID: "R1", Name: "wiki-talk", Domain: "Knowledge", PaperScale: 6.9,
			Directed: true, Weighted: false,
			Params:   algorithms.Params{Source: 1, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return wikiTalkStandIn() },
		},
		{
			ID: "R2", Name: "kgs", Domain: "Gaming", PaperScale: 7.3,
			Directed: false, Weighted: false,
			Params:   algorithms.Params{Source: 2, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return kgsStandIn() },
		},
		{
			ID: "R3", Name: "cit-patents", Domain: "Knowledge", PaperScale: 7.3,
			Directed: true, Weighted: false,
			Params:   algorithms.Params{Source: 100, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return citPatentsStandIn() },
		},
		{
			ID: "R4", Name: "dota-league", Domain: "Gaming", PaperScale: 7.7,
			Directed: false, Weighted: true,
			Params:   algorithms.Params{Source: 0, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return dotaLeagueStandIn() },
		},
		{
			ID: "R5", Name: "com-friendster", Domain: "Social", PaperScale: 9.3,
			Directed: false, Weighted: false,
			Params:   algorithms.Params{Source: 0, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return friendsterStandIn() },
		},
		{
			ID: "R6", Name: "twitter_mpi", Domain: "Social", PaperScale: 9.3,
			Directed: true, Weighted: false,
			Params:   algorithms.Params{Source: 0, Iterations: 10},
			Generate: func() (*graph.Graph, error) { return twitterStandIn() },
		},

		// ---- Table 4: synthetic datasets ----
		datagenEntry("D100", 100, 0, 8.0),
		datagenEntry("D100cc005", 100, 0.05, 8.0),
		datagenEntry("D100cc015", 100, 0.15, 8.0),
		datagenEntry("D300", 300, 0, 8.5),
		datagenEntry("D1000", 1000, 0, 9.0),
		graph500Entry("G22", 22, 7.8),
		graph500Entry("G23", 23, 8.1),
		graph500Entry("G24", 24, 8.4),
		graph500Entry("G25", 25, 8.7),
		graph500Entry("G26", 26, 9.0),

		// ---- Out-of-core XL entries: Graph500 at true paper scale ----
		graph500XLEntry("XL22", 22, 7.8),
		graph500XLEntry("XL24", 24, 8.4),
	}
}

// liteDivisor scales the paper's dataset sizes down so the whole workload
// runs on one machine: Datagen scale factors keep their labels but
// generate EdgesPerUnit=100 edges per unit, and Graph500 scales are
// reduced by graph500ScaleOffset.
const (
	datagenEdgesPerUnit = 100
	graph500ScaleOffset = 13
)

// datagenEntry builds a Table 4 Datagen dataset.
func datagenEntry(id string, sf float64, cc float64, paperScale float64) Dataset {
	name := fmt.Sprintf("datagen-%g", sf)
	if cc > 0 {
		name = fmt.Sprintf("datagen-%g-cc%.2f", sf, cc)
	}
	return Dataset{
		ID: id, Name: name, Domain: "Synthetic", PaperScale: paperScale,
		Directed: false, Weighted: true,
		Params: algorithms.Params{Source: 0, Iterations: 10},
		Generate: func() (*graph.Graph, error) {
			res, err := datagen.Generate(datagen.Config{
				ScaleFactor:  sf,
				EdgesPerUnit: datagenEdgesPerUnit,
				TargetCC:     cc,
				Seed:         uint64(777 + sf*10 + cc*1000),
				Weighted:     true,
			})
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		},
	}
}

// graph500Entry builds a Table 4 Graph500 dataset at reproduction scale.
func graph500Entry(id string, paperScaleParam int, paperScale float64) Dataset {
	liteScale := paperScaleParam - graph500ScaleOffset
	return Dataset{
		ID: id, Name: fmt.Sprintf("graph500-%d", paperScaleParam), Domain: "Synthetic",
		PaperScale: paperScale,
		Directed:   false, Weighted: false,
		Params: algorithms.Params{Source: 0, Iterations: 10},
		Generate: func() (*graph.Graph, error) {
			return graph500.Generate(graph500.Config{Scale: liteScale, Seed: uint64(paperScaleParam)})
		},
	}
}

// graph500XLEntry builds an out-of-core Graph500 dataset at the paper's
// true scale — no liteDivisor reduction. A scale-22 graph carries 2^22
// vertices and ~67M edges, 10-100x the largest lite stand-in, which is
// exactly what the streaming BuildTo + mmap path exists for. The Stream
// and Generate closures share one Config, so both paths produce the same
// graph; only the XL residency differs.
func graph500XLEntry(id string, scale int, paperScale float64) Dataset {
	cfg := graph500.Config{Scale: scale, Seed: uint64(scale)}
	return Dataset{
		ID: id, Name: fmt.Sprintf("graph500-%d-xl", scale), Domain: "Synthetic",
		PaperScale: paperScale,
		Directed:   false, Weighted: false,
		OutOfCore: true,
		Params:    algorithms.Params{Source: 0, Iterations: 10},
		Stream:    func(b *graph.Builder) error { return graph500.Into(cfg, b) },
		Generate:  func() (*graph.Graph, error) { return graph500.Generate(cfg) },
	}
}

// UpToClass returns catalog datasets whose generated graph is in the given
// class or smaller, sorted by scale (the paper's "all datasets up to class
// L" selections). Graphs materialize through the default store.
func UpToClass(max metrics.Class) ([]Dataset, error) {
	return UpToClassFrom(DefaultStore(), max)
}

// UpToClassFrom is UpToClass materializing through the given store.
func UpToClassFrom(s *graphstore.Store, max metrics.Class) ([]Dataset, error) {
	return UpToClassWith(func(d Dataset) (*graph.Graph, error) { return LoadFrom(s, d.ID) }, max)
}

// UpToClassWith is UpToClass materializing through an arbitrary loader —
// the harness passes its session loader so dataset events fire for the
// classification scan too.
func UpToClassWith(load func(Dataset) (*graph.Graph, error), max metrics.Class) ([]Dataset, error) {
	type scored struct {
		d Dataset
		s float64
	}
	var keep []scored
	for _, d := range Catalog() {
		g, err := load(d)
		if err != nil {
			return nil, err
		}
		s := Scale(g)
		if metrics.ClassOrder(Class(g)) <= metrics.ClassOrder(max) {
			keep = append(keep, scored{d: d, s: s})
		}
	}
	slices.SortStableFunc(keep, func(a, b scored) int { return cmp.Compare(a.s, b.s) })
	out := make([]Dataset, len(keep))
	for i, k := range keep {
		out[i] = k.d
	}
	return out, nil
}
