package workload

// SurveyRow is one row of Table 1: the results of the two literature
// surveys (124 articles on unweighted graph analysis, 44 on weighted) that
// drive the first, data-driven stage of the two-stage workload selection
// process (Section 2.2.2).
type SurveyRow struct {
	// Weighted distinguishes the weighted-graphs survey from the
	// unweighted one.
	Weighted bool
	// Class is the algorithm class, e.g. "Traversal".
	Class string
	// Selected lists the core algorithms chosen from this class.
	Selected string
	// Count is the number of algorithm occurrences in the surveyed
	// articles and Percent its share within the survey.
	Count   int
	Percent float64
}

// Survey returns Table 1 verbatim: the algorithm-class frequencies that
// justify the selection of the six core algorithms.
func Survey() []SurveyRow {
	return []SurveyRow{
		{Weighted: false, Class: "Statistics", Selected: "PR, LCC", Count: 24, Percent: 17.0},
		{Weighted: false, Class: "Traversal", Selected: "BFS", Count: 69, Percent: 48.9},
		{Weighted: false, Class: "Components", Selected: "WCC, CDLP", Count: 20, Percent: 14.2},
		{Weighted: false, Class: "Graph Evolution", Selected: "", Count: 6, Percent: 4.2},
		{Weighted: false, Class: "Other", Selected: "", Count: 22, Percent: 15.6},
		{Weighted: true, Class: "Distances/Paths", Selected: "SSSP", Count: 17, Percent: 34},
		{Weighted: true, Class: "Clustering", Selected: "", Count: 7, Percent: 14},
		{Weighted: true, Class: "Partitioning", Selected: "", Count: 5, Percent: 10},
		{Weighted: true, Class: "Routing", Selected: "", Count: 5, Percent: 10},
		{Weighted: true, Class: "Other", Selected: "", Count: 16, Percent: 32},
	}
}
