package workload_test

import (
	"context"
	"sync"
	"testing"

	"graphalytics/internal/graphstore"
	"graphalytics/internal/metrics"
	"graphalytics/internal/workload"
)

func TestFingerprintDistinguishesDatasetsAndVersions(t *testing.T) {
	r1, err := workload.ByID("R1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := workload.ByID("R2")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() == r2.Fingerprint() {
		t.Fatal("different datasets must have different fingerprints")
	}
	if r1.Fingerprint() != r1.Fingerprint() {
		t.Fatal("fingerprints must be stable")
	}
}

func TestByIDIsIndexedOnce(t *testing.T) {
	// ByID must agree with a linear catalog scan for every entry, and
	// repeated Catalog calls must return equal, independently mutable
	// slices.
	c1, c2 := workload.Catalog(), workload.Catalog()
	if len(c1) == 0 || len(c1) != len(c2) {
		t.Fatalf("catalog sizes: %d vs %d", len(c1), len(c2))
	}
	for i, d := range c1 {
		got, err := workload.ByID(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != d.ID || got.Name != d.Name {
			t.Fatalf("ByID(%s) disagrees with catalog scan", d.ID)
		}
		if c2[i].ID != d.ID {
			t.Fatalf("catalog order unstable at %d", i)
		}
	}
	c1[0] = workload.Dataset{ID: "mutated"}
	if workload.Catalog()[0].ID == "mutated" {
		t.Fatal("mutating a returned catalog slice must not affect the package")
	}
}

func TestLoadFromSnapshotDirSkipsGeneration(t *testing.T) {
	dir := t.TempDir()
	cold := graphstore.New(graphstore.Options{Dir: dir})
	r, err := workload.GetFrom(cold, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != graphstore.SourceBuilt {
		t.Fatalf("cold load source = %v, want built", r.Source)
	}

	// A fresh store over the same dir simulates a new process: the graph
	// must come back from the snapshot, not the generator.
	warm := graphstore.New(graphstore.Options{Dir: dir})
	r2, err := workload.GetFrom(warm, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != graphstore.SourceSnapshot {
		t.Fatalf("warm load source = %v, want snapshot", r2.Source)
	}
	if r2.Graph.NumVertices() != r.Graph.NumVertices() || r2.Graph.NumEdges() != r.Graph.NumEdges() {
		t.Fatal("snapshot-loaded dataset differs from the generated one")
	}
	d, _ := workload.ByID("R1")
	if _, ok := r2.Graph.Index(d.Params.Source); !ok {
		t.Fatal("snapshot-loaded dataset lost the BFS source vertex")
	}
}

func TestWarmMaterializesWholeCatalog(t *testing.T) {
	s := graphstore.New(graphstore.Options{})
	var mu sync.Mutex
	sources := make(map[string]graphstore.Source)
	err := workload.Warm(context.Background(), s, 4, func(id string, r graphstore.Result, err error) {
		if err != nil {
			t.Errorf("%s: %v", id, err)
			return
		}
		mu.Lock()
		sources[id] = r.Source
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != len(workload.Catalog()) {
		t.Fatalf("warmed %d datasets, want %d", len(sources), len(workload.Catalog()))
	}
	for id, src := range sources {
		if src != graphstore.SourceBuilt {
			t.Errorf("%s: first warm source = %v, want built", id, src)
		}
	}
	// A second warm over the same store is all memory hits.
	err = workload.Warm(context.Background(), s, 4, func(id string, r graphstore.Result, err error) {
		if err == nil && r.Source != graphstore.SourceMemory {
			t.Errorf("%s: second warm source = %v, want memory", id, r.Source)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWarmHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := graphstore.New(graphstore.Options{})
	if err := workload.Warm(ctx, s, 2, nil); err == nil {
		t.Fatal("warm with a canceled context must report the context error")
	}
}

func TestUpToClassFromUsesGivenStore(t *testing.T) {
	s := graphstore.New(graphstore.Options{})
	upToL, err := workload.UpToClassFrom(s, metrics.ClassL)
	if err != nil {
		t.Fatal(err)
	}
	if len(upToL) == 0 {
		t.Fatal("no datasets up to class L")
	}
	if s.Len() != len(workload.Catalog()) {
		t.Fatalf("store holds %d graphs, want the whole catalog (%d) after classification", s.Len(), len(workload.Catalog()))
	}
}
