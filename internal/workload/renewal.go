package workload

import (
	"fmt"
	"time"

	"graphalytics/internal/graph"
	"graphalytics/internal/metrics"
)

// The renewal process (Section 2.4) re-derives the benchmark's reference
// point every two years: class L is redefined as the largest class such
// that a state-of-the-art platform completes BFS within one hour on every
// graph of that class on a single commodity machine.

// BFSTimer measures a single-machine BFS on a graph; the renewal process
// is parameterized on it so any platform can serve as the state of the
// art.
type BFSTimer func(g *graph.Graph, source int64) (time.Duration, error)

// RenewalResult reports a renewal evaluation.
type RenewalResult struct {
	// ClassL is the recomputed reference class.
	ClassL metrics.Class
	// PerDataset records the measured BFS time per evaluated dataset.
	PerDataset map[string]time.Duration
}

// RenewClassL evaluates BFS on every catalog dataset with the given timer
// and budget and returns the largest class whose graphs all complete
// within the budget. Classes with no catalog graphs inherit eligibility
// from their smaller neighbors.
func RenewClassL(timer BFSTimer, budget time.Duration) (RenewalResult, error) {
	res := RenewalResult{PerDataset: make(map[string]time.Duration)}
	worst := make(map[metrics.Class]time.Duration)
	for _, d := range Catalog() {
		g, err := Load(d.ID)
		if err != nil {
			return res, err
		}
		t, err := timer(g, d.Params.Source)
		if err != nil {
			return res, fmt.Errorf("workload: renewal BFS on %s: %w", d.ID, err)
		}
		res.PerDataset[d.ID] = t
		c := Class(g)
		if t > worst[c] {
			worst[c] = t
		}
	}
	// Walk classes from smallest upward; the reference class is the last
	// one whose worst graph fits the budget.
	ordered := []metrics.Class{
		metrics.Class2XS, metrics.ClassXS, metrics.ClassS,
		metrics.ClassM, metrics.ClassL, metrics.ClassXL, metrics.Class2XL,
	}
	last := metrics.Class2XS
	for _, c := range ordered {
		w, ok := worst[c]
		if !ok {
			continue // no graphs in this class: does not limit the walk
		}
		if w > budget {
			break
		}
		last = c
	}
	res.ClassL = last
	return res, nil
}
