package workload_test

import (
	"testing"
	"time"

	"graphalytics/internal/graph"
	"graphalytics/internal/metrics"
	"graphalytics/internal/workload"
)

func TestCatalogClassesMatchPaperLabels(t *testing.T) {
	// The stand-ins are ~10^4 smaller; on the shifted scale they must
	// keep the paper's T-shirt labels.
	want := map[string]metrics.Class{
		"R1": metrics.Class2XS, "R2": metrics.ClassXS, "R3": metrics.ClassXS,
		"R4": metrics.ClassS, "R5": metrics.ClassXL, "R6": metrics.ClassXL,
		"D100": metrics.ClassM, "D300": metrics.ClassL, "D1000": metrics.ClassXL,
		"G22": metrics.ClassS, "G23": metrics.ClassM, "G24": metrics.ClassM,
		"G25": metrics.ClassL, "G26": metrics.ClassXL,
	}
	for id, class := range want {
		g, err := workload.Load(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := workload.Class(g); got != class {
			t.Errorf("%s: class %s, want %s (scale %.1f)", id, got, class, workload.Scale(g))
		}
	}
}

func TestLoadCaches(t *testing.T) {
	a, err := workload.Load("R1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Load("R1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Load must return the cached graph")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := workload.ByID("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := workload.Load("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBFSSourceExists(t *testing.T) {
	for _, d := range workload.Catalog() {
		g, err := workload.Load(d.ID)
		if err != nil {
			t.Fatalf("%s: %v", d.ID, err)
		}
		if _, ok := g.Index(d.Params.Source); !ok {
			t.Errorf("%s: BFS source %d not in graph", d.ID, d.Params.Source)
		}
		if d.Weighted != g.Weighted() || d.Directed != g.Directed() {
			t.Errorf("%s: catalog shape disagrees with generated graph", d.ID)
		}
	}
}

func TestUpToClass(t *testing.T) {
	upToL, err := workload.UpToClass(metrics.ClassL)
	if err != nil {
		t.Fatal(err)
	}
	if len(upToL) == 0 {
		t.Fatal("no datasets up to class L")
	}
	for _, d := range upToL {
		g, _ := workload.Load(d.ID)
		if metrics.ClassOrder(workload.Class(g)) > metrics.ClassOrder(metrics.ClassL) {
			t.Errorf("%s exceeds class L", d.ID)
		}
	}
	// XL datasets (R5, R6, D1000, G26) must be excluded.
	for _, d := range upToL {
		if d.ID == "R5" || d.ID == "D1000" {
			t.Errorf("%s must not be in the up-to-L selection", d.ID)
		}
	}
}

func TestR2SmallComponentForBFS(t *testing.T) {
	// R2's BFS root sits in a small community so the search covers ~10%
	// of the graph — the property behind OpenG's queue-based BFS win.
	g, err := workload.Load("R2")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := workload.ByID("R2")
	src, ok := g.Index(d.Params.Source)
	if !ok {
		t.Fatal("R2 source missing")
	}
	reached := 0
	visited := make([]bool, g.NumVertices())
	queue := []int32{src}
	visited[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		reached++
		for _, u := range g.OutNeighbors(v) {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	frac := float64(reached) / float64(g.NumVertices())
	if frac < 0.02 || frac > 0.3 {
		t.Fatalf("BFS from R2 root covers %.0f%% of vertices, want ~10%%", 100*frac)
	}
}

func TestSurveyMatchesTable1(t *testing.T) {
	rows := workload.Survey()
	if len(rows) != 10 {
		t.Fatalf("survey has %d rows, want 10", len(rows))
	}
	var unweighted, weighted int
	for _, r := range rows {
		if r.Weighted {
			weighted += r.Count
		} else {
			unweighted += r.Count
		}
	}
	if unweighted != 141 { // 24+69+20+6+22 occurrences across 124 articles
		t.Errorf("unweighted survey total = %d, want 141", unweighted)
	}
	if weighted != 50 { // 17+7+5+5+16 across 44 articles
		t.Errorf("weighted survey total = %d, want 50", weighted)
	}
}

func TestRenewClassL(t *testing.T) {
	// A fake timer whose BFS time is proportional to graph size: with a
	// generous budget every class passes; with a tiny one only the
	// smallest class remains.
	timer := func(g *graph.Graph, source int64) (time.Duration, error) {
		return time.Duration(g.NumEdges()) * time.Nanosecond, nil
	}
	res, err := workload.RenewClassL(timer, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassL != metrics.ClassXL {
		t.Fatalf("generous budget: class L = %s, want XL (largest populated class)", res.ClassL)
	}
	res, err = workload.RenewClassL(timer, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ClassOrder(res.ClassL) >= metrics.ClassOrder(metrics.ClassXL) {
		t.Fatalf("tiny budget: class L = %s, want below XL", res.ClassL)
	}
	if len(res.PerDataset) != len(workload.Catalog()) {
		t.Fatal("renewal must measure every dataset")
	}
}
