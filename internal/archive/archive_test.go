package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/core"
)

// sampleResults builds a deterministic multi-job result set with fixed
// timestamps, as a completed sweep would produce.
func sampleResults() []core.JobResult {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	algs := []algorithms.Algorithm{algorithms.BFS, algorithms.CDLP, algorithms.SSSP}
	var out []core.JobResult
	for i, alg := range algs {
		for rep := 0; rep < 2; rep++ {
			out = append(out, core.JobResult{
				Spec: core.JobSpec{
					Platform: "native", Dataset: "R5(L)", Algorithm: alg,
					Threads: 4, Machines: 1,
				},
				Status:         core.StatusOK,
				Timestamp:      base.Add(time.Duration(i*2+rep) * time.Minute),
				Scale:          7.5,
				UploadTime:     120 * time.Millisecond,
				Makespan:       time.Duration(300+10*i) * time.Millisecond,
				ProcessingTime: time.Duration(200+10*i) * time.Millisecond,
				EPS:            1e6,
				Rounds:         3 + i,
				Validated:      true,
				ValidationOK:   true,
			})
		}
	}
	return out
}

func sampleSpec() *core.BenchSpec {
	return &core.BenchSpec{
		Name:       "sample-sweep",
		Platforms:  []string{"native"},
		Datasets:   core.DatasetSelector{IDs: []string{"R5(L)"}},
		Algorithms: []algorithms.Algorithm{algorithms.BFS, algorithms.CDLP, algorithms.SSSP},
	}
}

// TestCommitDeterministic is the canonical-encoding acceptance test:
// the same spec and the same results committed into two fresh archives
// must produce byte-identical commit records, the same commit ID, and
// the same Merkle root.
func TestCommitDeterministic(t *testing.T) {
	ids := make([]string, 2)
	roots := make([]string, 2)
	recs := make([][]byte, 2)
	for i := range ids {
		a, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c, err := a.CommitResults("sweep", sampleSpec(), sampleResults())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := os.ReadFile(a.commitPath(c.ID))
		if err != nil {
			t.Fatal(err)
		}
		ids[i], roots[i], recs[i] = c.ID, c.Root, rec
	}
	if ids[0] != ids[1] {
		t.Errorf("commit IDs differ: %s vs %s", ids[0], ids[1])
	}
	if roots[0] != roots[1] {
		t.Errorf("merkle roots differ: %s vs %s", roots[0], roots[1])
	}
	if !bytes.Equal(recs[0], recs[1]) {
		t.Errorf("commit records not byte-identical:\n%s\n%s", recs[0], recs[1])
	}
	if got := shaHex(recs[0]); got != ids[0] {
		t.Errorf("commit ID %s is not the SHA-256 of the record bytes (%s)", ids[0], got)
	}
}

func TestChainHeadAndLog(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if head, err := a.Head(); err != nil || head != "" {
		t.Fatalf("empty archive Head = %q, %v", head, err)
	}
	c1, err := a.CommitBench("bench-1", []byte(`{"results":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c1.Parent != "" {
		t.Errorf("first commit parent = %q, want empty", c1.Parent)
	}
	c2, err := a.CommitResults("run-2", nil, sampleResults())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Parent != c1.ID {
		t.Errorf("second commit parent = %s, want %s", short(c2.Parent), short(c1.ID))
	}
	head, err := a.Head()
	if err != nil || head != c2.ID {
		t.Fatalf("Head = %s, %v, want %s", short(head), err, short(c2.ID))
	}
	log, err := a.Log(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].ID != c2.ID || log[1].ID != c1.ID {
		t.Fatalf("Log order wrong: %+v", log)
	}
	// Same-content bench commits chain, not dedup: the second has a
	// parent, so its ID differs while its chunks are shared.
	c3, err := a.CommitBench("bench-1", []byte(`{"results":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c3.ID == c1.ID {
		t.Error("chained commit with same content reused the same ID")
	}
	if c3.Root != c1.Root {
		t.Error("same content should re-derive the same merkle root")
	}
}

func TestResultsAndPayloadRoundTrip(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResults()
	c, err := a.CommitResults("sweep", sampleSpec(), want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Results(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Spec != want[i].Spec || got[i].Status != want[i].Status ||
			!got[i].Timestamp.Equal(want[i].Timestamp) || got[i].Makespan != want[i].Makespan {
			t.Errorf("result %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
	spec, err := a.Spec(c)
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.Name != "sample-sweep" {
		t.Fatalf("spec round-trip: %+v", spec)
	}
	env, err := a.Env(c)
	if err != nil {
		t.Fatal(err)
	}
	if env.Go == "" || env.CPUs <= 0 {
		t.Errorf("environment chunk incomplete: %+v", env)
	}

	bench := []byte(`{"date":"2026-08-07","results":[{"name":"X","ns_per_op":1}]}` + "\n")
	cb, err := a.CommitBench("snap", bench)
	if err != nil {
		t.Fatal(err)
	}
	back, err := a.PayloadBytes(cb, ChunkBench)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, bench) {
		t.Error("bench payload did not round-trip byte-for-byte")
	}
}

func TestResolve(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Resolve("HEAD"); err == nil {
		t.Error("Resolve(HEAD) on empty archive should fail")
	}
	c, err := a.CommitBench("snap", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []string{"HEAD", "", c.ID, c.ID[:8]} {
		id, err := a.Resolve(ref)
		if err != nil || id != c.ID {
			t.Errorf("Resolve(%q) = %s, %v, want %s", ref, short(id), err, short(c.ID))
		}
	}
	if _, err := a.Resolve("ab"); err == nil {
		t.Error("Resolve with a 2-char prefix should be rejected as ambiguous")
	}
}

// corrupt locates the stored chunk with the given logical name and
// applies damage to its file.
func corruptChunk(t *testing.T, a *Archive, c *Commit, name string, damage func(path string, data []byte)) Chunk {
	t.Helper()
	for _, ch := range c.Chunks {
		if ch.Name == name {
			b, err := os.ReadFile(a.chunkPath(ch.SHA256))
			if err != nil {
				t.Fatal(err)
			}
			damage(a.chunkPath(ch.SHA256), b)
			return ch
		}
	}
	t.Fatalf("no chunk %q in commit", name)
	return Chunk{}
}

// TestVerifyCorruptionMatrix is the corruption acceptance matrix: a
// flipped chunk byte, a truncated chunk, a deleted chunk, a tampered
// commit record, and a broken parent chain must each be detected, and
// chunk damage must name the exact chunk.
func TestVerifyCorruptionMatrix(t *testing.T) {
	build := func(t *testing.T) (*Archive, *Commit, *Commit) {
		a, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c1, err := a.CommitBench("snap", []byte(`{"results":[{"name":"A","ns_per_op":10}]}`))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := a.CommitResults("sweep", sampleSpec(), sampleResults())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("fresh archive fails verify: %+v", rep.Problems)
		}
		if rep.Commits != 2 || rep.Chunks == 0 {
			t.Fatalf("verify coverage: %d commits %d chunks", rep.Commits, rep.Chunks)
		}
		return a, c1, c2
	}
	mustProblem := func(t *testing.T, a *Archive, wantCommit, wantChunk, wantDetail string) {
		t.Helper()
		rep, err := a.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("Verify reported clean on a corrupted archive")
		}
		for _, p := range rep.Problems {
			if (wantCommit == "" || p.Commit == wantCommit) &&
				(wantChunk == "" || p.Chunk == wantChunk) &&
				strings.Contains(p.Detail, wantDetail) {
				return
			}
		}
		t.Errorf("no problem naming commit=%s chunk=%q detail~%q; got %+v",
			short(wantCommit), wantChunk, wantDetail, rep.Problems)
	}

	t.Run("flipped chunk byte", func(t *testing.T) {
		a, _, c2 := build(t)
		name := "result-000003.json"
		corruptChunk(t, a, c2, name, func(path string, b []byte) {
			b[len(b)/2] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		mustProblem(t, a, c2.ID, name, "chunk corrupt")
	})

	t.Run("truncated chunk", func(t *testing.T) {
		a, c1, _ := build(t)
		corruptChunk(t, a, c1, ChunkBench, func(path string, b []byte) {
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		})
		mustProblem(t, a, c1.ID, ChunkBench, "truncated")
		mustProblem(t, a, c1.ID, ChunkBench, "chunk corrupt")
	})

	t.Run("deleted chunk", func(t *testing.T) {
		a, _, c2 := build(t)
		corruptChunk(t, a, c2, ChunkSpec, func(path string, _ []byte) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		})
		mustProblem(t, a, c2.ID, ChunkSpec, "chunk missing")
	})

	t.Run("tampered commit record", func(t *testing.T) {
		a, _, c2 := build(t)
		path := a.commitPath(c2.ID)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tampered := bytes.Replace(b, []byte(`"sweep"`), []byte(`"swept"`), 1)
		if bytes.Equal(tampered, b) {
			t.Fatal("tamper had no effect")
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		mustProblem(t, a, c2.ID, "", "commit record tampered")
	})

	t.Run("broken parent chain", func(t *testing.T) {
		a, c1, _ := build(t)
		if err := os.Remove(a.commitPath(c1.ID)); err != nil {
			t.Fatal(err)
		}
		mustProblem(t, a, c1.ID, "", "parent chain broken")
	})

	t.Run("dangling HEAD", func(t *testing.T) {
		a, _, _ := build(t)
		bogus := strings.Repeat("ab", sha256.Size)
		if err := os.WriteFile(filepath.Join(a.Dir(), "HEAD"), []byte(bogus+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		mustProblem(t, a, bogus, "", "HEAD points at missing commit")
	})
}

func TestMerkleRoot(t *testing.T) {
	h := func(b []byte) []byte {
		s := sha256.Sum256(b)
		return s[:]
	}
	pair := func(l, r []byte) []byte {
		s := sha256.New()
		s.Write(l)
		s.Write(r)
		return s.Sum(nil)
	}
	a, b, c := h([]byte("a")), h([]byte("b")), h([]byte("c"))
	if got := merkleRoot([][]byte{a}); !bytes.Equal(got, a) {
		t.Error("single leaf must be its own root")
	}
	if got := merkleRoot([][]byte{a, b}); !bytes.Equal(got, pair(a, b)) {
		t.Error("two-leaf root must be sha256(l||r)")
	}
	// Odd node promotion: root(a,b,c) = pair(pair(a,b), c).
	if got := merkleRoot([][]byte{a, b, c}); !bytes.Equal(got, pair(pair(a, b), c)) {
		t.Error("odd leaf must be promoted, not duplicated")
	}
	if bytes.Equal(merkleRoot([][]byte{a, b}), merkleRoot([][]byte{b, a})) {
		t.Error("root must depend on leaf order")
	}
	if hex.EncodeToString(merkleRoot(nil)) != shaHex(nil) {
		t.Error("empty batch root must be sha256 of empty string")
	}
}
