package archive

import "crypto/sha256"

// merkleRoot computes the Merkle root over the batch's chunk digests.
// Leaves are the raw SHA-256 digests of the chunks in batch order; each
// level hashes sibling pairs as sha256(left || right); an odd trailing
// node is promoted unchanged to the next level (not duplicated, so a
// single-chunk batch's root is the chunk digest itself and padding
// cannot be confused with data). An empty batch hashes the empty
// string, giving a defined root for degenerate commits.
func merkleRoot(leaves [][]byte) []byte {
	if len(leaves) == 0 {
		sum := sha256.Sum256(nil)
		return sum[:]
	}
	level := make([][]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			h := sha256.New()
			h.Write(level[i])
			h.Write(level[i+1])
			next = append(next, h.Sum(nil))
		}
		level = next
	}
	return level[0]
}
