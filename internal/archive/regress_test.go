package archive

import (
	"bytes"
	"strings"
	"testing"
)

const benchA = `{
  "date": "2026-08-01",
  "results": [
    {"name": "BenchmarkEngineExecute/native/CDLP-8", "iterations": 3, "ns_per_op": 14000000, "bytes_per_op": null, "allocs_per_op": 26},
    {"name": "BenchmarkEngineExecute/native/BFS-8", "iterations": 3, "ns_per_op": 960000, "bytes_per_op": 1024, "allocs_per_op": 118},
    {"name": "BenchmarkSnapshotMapOpen/scale12-8", "iterations": 3, "ns_per_op": 25000, "bytes_per_op": null, "allocs_per_op": 10},
    {"name": "BenchmarkSnapshotMapOpen/scale16-8", "iterations": 3, "ns_per_op": 65000, "bytes_per_op": null, "allocs_per_op": 10}
  ]
}`

// benchB: CDLP 2x slower, BFS slightly (under threshold) slower,
// map-open ratio unchanged. Names carry a different GOMAXPROCS suffix.
const benchB = `{
  "date": "2026-08-07",
  "results": [
    {"name": "BenchmarkEngineExecute/native/CDLP-4", "iterations": 3, "ns_per_op": 28000000, "bytes_per_op": null, "allocs_per_op": 26},
    {"name": "BenchmarkEngineExecute/native/BFS-4", "iterations": 3, "ns_per_op": 1000000, "bytes_per_op": 1024, "allocs_per_op": 118},
    {"name": "BenchmarkSnapshotMapOpen/scale12-4", "iterations": 3, "ns_per_op": 26000, "bytes_per_op": null, "allocs_per_op": 10},
    {"name": "BenchmarkSnapshotMapOpen/scale16-4", "iterations": 3, "ns_per_op": 67600, "bytes_per_op": null, "allocs_per_op": 10}
  ]
}`

func TestBenchMetrics(t *testing.T) {
	m, err := BenchMetrics([]byte(benchA))
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkEngineExecute/native/CDLP/ns"]; got != 14000000 {
		t.Errorf("CDLP ns = %v (GOMAXPROCS suffix must be stripped)", got)
	}
	if got := m["BenchmarkEngineExecute/native/BFS/B"]; got != 1024 {
		t.Errorf("BFS B/op = %v", got)
	}
	if _, ok := m["BenchmarkEngineExecute/native/CDLP/B"]; ok {
		t.Error("null bytes_per_op must not produce a metric")
	}
	ratio := m["derived/map_open_ratio"]
	if ratio < 2.59 || ratio > 2.61 {
		t.Errorf("derived map-open ratio = %v, want 65000/25000", ratio)
	}
}

func mustGates(t *testing.T, specs ...string) []Gate {
	t.Helper()
	var gates []Gate
	for _, s := range specs {
		g, err := ParseGate(s, 10)
		if err != nil {
			t.Fatal(err)
		}
		gates = append(gates, g)
	}
	return gates
}

// TestRegressRedOnSlowdownGreenOnBaseline is the CI-gate acceptance
// pair: a synthetic 2x CDLP slowdown must be red, the identical
// snapshot must be green, and an under-threshold drift must not trip.
func TestRegressRedOnSlowdownGreenOnBaseline(t *testing.T) {
	old, err := BenchMetrics([]byte(benchA))
	if err != nil {
		t.Fatal(err)
	}
	gates := mustGates(t, `EngineExecute/.*/CDLP/ns`, `derived/map_open_ratio`)

	// Green: identical snapshot.
	rep := Regress(old, old, gates)
	if !rep.OK() {
		t.Fatalf("identical snapshots must pass: %+v", rep)
	}

	// Red: 2x slowdown on the gated CDLP hot path.
	now, err := BenchMetrics([]byte(benchB))
	if err != nil {
		t.Fatal(err)
	}
	rep = Regress(old, now, gates)
	if rep.OK() || rep.Regressions != 1 {
		t.Fatalf("2x CDLP slowdown must fail exactly one gate: %+v", rep)
	}
	var hit *Delta
	for i := range rep.Deltas {
		if rep.Deltas[i].Regressed {
			hit = &rep.Deltas[i]
		}
	}
	if hit == nil || hit.Metric != "BenchmarkEngineExecute/native/CDLP/ns" {
		t.Fatalf("wrong regressed metric: %+v", hit)
	}
	if hit.Percent < 99 || hit.Percent > 101 {
		t.Errorf("delta = %v%%, want ~+100%%", hit.Percent)
	}
	// BFS drifted +4.2% but is ungated; map-open ratio drifted +0.0%.
	for _, d := range rep.Deltas {
		if d.Metric == "derived/map_open_ratio" && d.Regressed {
			t.Error("unchanged map-open ratio tripped its gate")
		}
	}

	var buf bytes.Buffer
	rep.Render(&buf, false)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "regress FAILED: 1 gated regression(s)") {
		t.Errorf("render missing verdicts:\n%s", out)
	}
}

func TestRegressThresholdAndMissing(t *testing.T) {
	old := map[string]float64{"X/ns": 100, "Y/ns": 100}
	gates := mustGates(t, `X/ns=25`, `Y/ns`)

	// +24% under a 25% gate passes; +26% fails.
	if rep := Regress(old, map[string]float64{"X/ns": 124, "Y/ns": 100}, gates); !rep.OK() {
		t.Errorf("+24%% under a 25%% gate must pass: %+v", rep)
	}
	if rep := Regress(old, map[string]float64{"X/ns": 126, "Y/ns": 100}, gates); rep.OK() {
		t.Error("+26% over a 25% gate must fail")
	}
	// Improvements never trip gates.
	if rep := Regress(old, map[string]float64{"X/ns": 10, "Y/ns": 10}, gates); !rep.OK() {
		t.Errorf("improvements must pass: %+v", rep)
	}
	// A gated metric missing from the latest snapshot is a regression.
	rep := Regress(old, map[string]float64{"X/ns": 100}, gates)
	if rep.OK() || len(rep.Missing) != 1 || rep.Missing[0] != "Y/ns" {
		t.Errorf("dropped gated metric must fail: %+v", rep)
	}
	var buf bytes.Buffer
	rep.Render(&buf, true)
	if !strings.Contains(buf.String(), "MISSING") {
		t.Errorf("render missing MISSING row:\n%s", buf.String())
	}
}

func TestParseGate(t *testing.T) {
	g, err := ParseGate("CDLP.*/ns=7.5", 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Threshold != 7.5 || !g.Pattern.MatchString("x/CDLPfoo/ns") {
		t.Errorf("parsed gate %+v", g)
	}
	g, err = ParseGate("plain", 10)
	if err != nil || g.Threshold != 10 {
		t.Fatalf("default threshold: %+v, %v", g, err)
	}
	if _, err := ParseGate("[bad=5", 10); err == nil {
		t.Error("bad regex must be rejected")
	}
}

// TestBenchMetricsAt covers the archived end of the regress pipeline.
func TestBenchMetricsAt(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := a.CommitBench("snap-a", []byte(benchA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CommitBench("snap-b", []byte(benchB)); err != nil {
		t.Fatal(err)
	}
	old, err := a.BenchMetricsAt(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	now, err := a.BenchMetricsAt("HEAD")
	if err != nil {
		t.Fatal(err)
	}
	rep := Regress(old, now, mustGates(t, `CDLP/ns`))
	if rep.OK() {
		t.Error("archived 2x slowdown must regress")
	}
	// Results commits are not bench snapshots.
	cr, err := a.CommitResults("run", nil, sampleResults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.BenchMetricsAt(cr.ID); err == nil {
		t.Error("BenchMetricsAt on a results commit must fail")
	}
}
