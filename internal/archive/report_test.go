package archive

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/core"
)

// sweepResults builds a multi-platform, multi-algorithm sweep with
// repetitions — the report acceptance shape.
func sweepResults() []core.JobResult {
	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	var out []core.JobResult
	i := 0
	for _, platform := range []string{"native", "pregel"} {
		for _, alg := range []algorithms.Algorithm{algorithms.BFS, algorithms.CDLP, algorithms.WCC} {
			for rep := 0; rep < 2; rep++ {
				status := core.StatusOK
				if platform == "pregel" && alg == algorithms.WCC && rep == 1 {
					status = core.StatusSLABreak
				}
				out = append(out, core.JobResult{
					Spec: core.JobSpec{Platform: platform, Dataset: "R5(L)",
						Algorithm: alg, Threads: 4, Machines: 1},
					Status:         status,
					Timestamp:      base.Add(time.Duration(i) * time.Minute),
					Scale:          7.5,
					Class:          "L",
					Makespan:       time.Duration(100+i) * time.Millisecond,
					ProcessingTime: time.Duration(60+i) * time.Millisecond,
				})
				i++
			}
		}
	}
	return out
}

// TestReportJSCarriesAllJobsAndRuns is the report acceptance test: the
// rendered benchmark-results.js must parse (after stripping the JS
// wrapper) and carry every job and run of a multi-algorithm sweep with
// consistent cross-references.
func TestReportJSCarriesAllJobsAndRuns(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	results := sweepResults()
	c, err := a.CommitResults("sweep", sampleSpec(), results)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.BuildReport(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReportJS(&buf, rep); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	if !strings.HasPrefix(js, "var results = ") || !strings.HasSuffix(js, ";\n") {
		t.Fatalf("not a benchmark-results.js payload: %.40q...", js)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(js, "var results = "), ";\n")

	var parsed struct {
		ID     string `json:"id"`
		System struct {
			Platform struct {
				Name string `json:"name"`
			} `json:"platform"`
			Environment struct {
				Machines []map[string]any `json:"machines"`
			} `json:"environment"`
		} `json:"system"`
		Configuration struct {
			TargetScale string `json:"target-scale"`
		} `json:"configuration"`
		Result struct {
			Experiments map[string]struct {
				Type string   `json:"type"`
				Jobs []string `json:"jobs"`
			} `json:"experiments"`
			Jobs map[string]struct {
				Algorithm  string   `json:"algorithm"`
				Dataset    string   `json:"dataset"`
				Repetition int      `json:"repetition"`
				Runs       []string `json:"runs"`
			} `json:"jobs"`
			Runs map[string]struct {
				Timestamp      int64 `json:"timestamp"`
				Success        bool  `json:"success"`
				Makespan       int64 `json:"makespan"`
				ProcessingTime int64 `json:"processing-time"`
			} `json:"runs"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("rendered benchmark-results.js does not parse: %v", err)
	}

	// 2 platforms x 3 algorithms = 6 jobs; every result is one run.
	if got := len(parsed.Result.Jobs); got != 6 {
		t.Errorf("report carries %d jobs, want 6", got)
	}
	if got := len(parsed.Result.Runs); got != len(results) {
		t.Errorf("report carries %d runs, want %d", got, len(results))
	}
	// One experiment per algorithm, each referencing both platforms' jobs.
	if got := len(parsed.Result.Experiments); got != 3 {
		t.Errorf("report carries %d experiments, want 3", got)
	}
	runsSeen := 0
	for id, j := range parsed.Result.Jobs {
		if j.Repetition != len(j.Runs) || len(j.Runs) != 2 {
			t.Errorf("job %s: repetition %d, %d runs, want 2", id, j.Repetition, len(j.Runs))
		}
		for _, rid := range j.Runs {
			if _, ok := parsed.Result.Runs[rid]; !ok {
				t.Errorf("job %s references missing run %s", id, rid)
			}
			runsSeen++
		}
	}
	if runsSeen != len(results) {
		t.Errorf("jobs reference %d runs, want %d", runsSeen, len(results))
	}
	for id, e := range parsed.Result.Experiments {
		if !strings.HasPrefix(e.Type, "baseline-alg-") {
			t.Errorf("experiment %s type %q", id, e.Type)
		}
		if len(e.Jobs) != 2 {
			t.Errorf("experiment %s references %d jobs, want 2 (one per platform)", id, len(e.Jobs))
		}
		for _, jid := range e.Jobs {
			if _, ok := parsed.Result.Jobs[jid]; !ok {
				t.Errorf("experiment %s references missing job %s", id, jid)
			}
		}
	}
	failed := 0
	for _, r := range parsed.Result.Runs {
		if !r.Success {
			failed++
		}
		if r.Timestamp < time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli() {
			t.Errorf("run timestamp %d not epoch-milliseconds", r.Timestamp)
		}
	}
	if failed != 1 {
		t.Errorf("report carries %d failed runs, want exactly the injected SLA break", failed)
	}
	if parsed.System.Platform.Name != "native+pregel" {
		t.Errorf("platform name %q", parsed.System.Platform.Name)
	}
	if parsed.Configuration.TargetScale != "L" {
		t.Errorf("target-scale %q, want L", parsed.Configuration.TargetScale)
	}

	// Rendering the same commit twice is byte-identical.
	var again bytes.Buffer
	rep2, err := a.BuildReport(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJS(&again, rep2); err != nil {
		t.Fatal(err)
	}
	if again.String() != js {
		t.Error("report rendering is not deterministic")
	}
}

func TestWriteReportDir(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CommitResults("sweep", nil, sweepResults()); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "report")
	if err := a.WriteReportDir("HEAD", dir); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), `src="benchmark-results.js"`) {
		t.Error("report page must load benchmark-results.js relatively")
	}
	js, err := os.ReadFile(filepath.Join(dir, "benchmark-results.js"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(js), "var results = ") {
		t.Error("benchmark-results.js missing the results assignment")
	}
}
