// Package archive is the harness's durable, tamper-evident result
// store: a content-addressed, append-only archive of benchmark runs.
//
// Every completed run commits a record batch — the results, the
// environment they were measured in, and the spec that produced them —
// as a set of chunks stored by their SHA-256 digest, sealed under a
// Merkle root and chained to the previous commit. Because every byte in
// the store is reachable only through a hash that covers it, Verify can
// re-derive the entire archive offline and name the exact chunk that
// was tampered with or rotted.
//
// Layout on disk (all writes are write-then-rename, files are never
// rewritten):
//
//	<dir>/chunks/<hex[:2]>/<hex>   chunk payload, named by its SHA-256
//	<dir>/commits/<id>.json        canonical commit record, id = SHA-256
//	                               of the record's own bytes
//	<dir>/HEAD                     hex id of the latest commit
//
// Commit records are canonical bytes: encoding/json with struct fields
// in schema order, map keys sorted, HTML escaping off, no indentation,
// one trailing newline. A commit contains no self-generated timestamps
// or entropy, so the same spec and the same results produce
// byte-identical commits and an identical Merkle root on every machine
// with the same environment.
package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"graphalytics/internal/core"
)

// Commit kinds: a results batch archives one RunPlan/daemon run; a
// bench batch archives one scripts/bench.sh performance snapshot.
const (
	KindResults = "results"
	KindBench   = "bench"
)

// Version is the archive format version stamped into every commit.
const Version = 1

// Chunk names inside a batch. Results batches additionally hold one
// ChunkResultPattern-named chunk per job result.
const (
	ChunkEnv           = "env.json"
	ChunkSpec          = "spec.json"
	ChunkBench         = "bench.json"
	ChunkResultPattern = "result-%06d.json"
)

// Chunk is one content-addressed payload of a commit: a logical name
// inside the batch, the SHA-256 of its bytes, and its size.
type Chunk struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Commit is one sealed record batch. Its ID is not stored inside the
// record — it *is* the SHA-256 of the record's canonical bytes, so the
// Parent field chains commit contents, not just names, and editing any
// field of any ancestor changes every descendant's ID.
type Commit struct {
	// ID is the commit's identity: SHA-256 (hex) of the canonical record
	// bytes. Derived, never serialized.
	ID string `json:"-"`

	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	// Parent is the ID of the previous commit ("" for the first), sealing
	// the archive into a chain.
	Parent string `json:"parent,omitempty"`
	// Root is the Merkle root over the chunk digests, in batch order.
	Root   string  `json:"merkle_root"`
	Chunks []Chunk `json:"chunks"`
}

// Payload is one named chunk-to-be of a batch.
type Payload struct {
	Name string
	Data []byte
}

// Archive is an open archive directory. All methods are safe for
// concurrent use; commits are serialized.
type Archive struct {
	dir string
	mu  sync.Mutex
}

// Open opens (creating if needed) the archive at dir.
func Open(dir string) (*Archive, error) {
	for _, sub := range []string{"chunks", "commits"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("archive: open %s: %w", dir, err)
		}
	}
	return &Archive{dir: dir}, nil
}

// Dir returns the archive's root directory.
func (a *Archive) Dir() string { return a.dir }

func (a *Archive) chunkPath(sha string) string {
	return filepath.Join(a.dir, "chunks", sha[:2], sha)
}

func (a *Archive) commitPath(id string) string {
	return filepath.Join(a.dir, "commits", id+".json")
}

func (a *Archive) headPath() string { return filepath.Join(a.dir, "HEAD") }

// canonical encodes v as the archive's canonical JSON bytes: struct
// fields in schema order, map keys sorted (an encoding/json guarantee),
// HTML escaping off, no indentation, exactly one trailing newline.
func canonical(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("archive: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func shaHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Head returns the ID of the latest commit, or "" for an empty archive.
func (a *Archive) Head() (string, error) {
	b, err := os.ReadFile(a.headPath())
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("archive: read HEAD: %w", err)
	}
	return trimSpace(string(b)), nil
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r' || s[len(s)-1] == ' ') {
		s = s[:len(s)-1]
	}
	return s
}

// Load reads and decodes one commit record by ID. The returned commit's
// ID is recomputed from the file bytes; a mismatch with the requested ID
// means the record was tampered with and is reported as an error.
func (a *Archive) Load(id string) (*Commit, error) {
	b, err := os.ReadFile(a.commitPath(id))
	if err != nil {
		return nil, fmt.Errorf("archive: load commit %s: %w", short(id), err)
	}
	var c Commit
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("archive: decode commit %s: %w", short(id), err)
	}
	c.ID = shaHex(b)
	if c.ID != id {
		return nil, fmt.Errorf("archive: commit %s: record bytes hash to %s (tampered record)", short(id), short(c.ID))
	}
	return &c, nil
}

// Resolve turns a commit reference — "HEAD", a full hex ID, or a unique
// ID prefix of at least 4 hex digits — into a full commit ID.
func (a *Archive) Resolve(ref string) (string, error) {
	if ref == "" || ref == "HEAD" {
		id, err := a.Head()
		if err != nil {
			return "", err
		}
		if id == "" {
			return "", errors.New("archive: empty archive (no HEAD)")
		}
		return id, nil
	}
	if len(ref) == sha256.Size*2 {
		return ref, nil
	}
	if len(ref) < 4 {
		return "", fmt.Errorf("archive: ambiguous commit ref %q (need >= 4 hex digits)", ref)
	}
	entries, err := os.ReadDir(filepath.Join(a.dir, "commits"))
	if err != nil {
		return "", fmt.Errorf("archive: list commits: %w", err)
	}
	var matches []string
	for _, e := range entries {
		id := cutSuffix(e.Name(), ".json")
		if len(id) >= len(ref) && id[:len(ref)] == ref {
			matches = append(matches, id)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("archive: no commit matches %q", ref)
	case 1:
		return matches[0], nil
	default:
		sort.Strings(matches)
		return "", fmt.Errorf("archive: ref %q is ambiguous (%d matches)", ref, len(matches))
	}
}

func cutSuffix(s, suffix string) string {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)]
	}
	return s
}

// Log walks the commit chain from HEAD toward the first commit,
// returning up to limit commits, newest first (limit <= 0: all).
func (a *Archive) Log(limit int) ([]*Commit, error) {
	id, err := a.Head()
	if err != nil {
		return nil, err
	}
	var out []*Commit
	seen := make(map[string]bool)
	for id != "" {
		if limit > 0 && len(out) >= limit {
			break
		}
		if seen[id] {
			return out, fmt.Errorf("archive: commit chain cycles at %s", short(id))
		}
		seen[id] = true
		c, err := a.Load(id)
		if err != nil {
			return out, err
		}
		out = append(out, c)
		id = c.Parent
	}
	return out, nil
}

// ChunkBytes reads a stored chunk by its SHA-256 digest and verifies the
// bytes still hash to it.
func (a *Archive) ChunkBytes(sha string) ([]byte, error) {
	if len(sha) != sha256.Size*2 {
		return nil, fmt.Errorf("archive: bad chunk digest %q", sha)
	}
	b, err := os.ReadFile(a.chunkPath(sha))
	if err != nil {
		return nil, fmt.Errorf("archive: read chunk %s: %w", short(sha), err)
	}
	if got := shaHex(b); got != sha {
		return nil, fmt.Errorf("archive: chunk %s: bytes hash to %s (corrupt chunk)", short(sha), short(got))
	}
	return b, nil
}

// PayloadBytes reads the chunk named name from commit c, verified
// against its recorded digest.
func (a *Archive) PayloadBytes(c *Commit, name string) ([]byte, error) {
	for _, ch := range c.Chunks {
		if ch.Name == name {
			return a.ChunkBytes(ch.SHA256)
		}
	}
	return nil, fmt.Errorf("archive: commit %s has no chunk %q", short(c.ID), name)
}

// commit seals payloads into a new commit chained to the current HEAD.
func (a *Archive) commit(kind, name string, payloads []Payload) (*Commit, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	parent, err := a.Head()
	if err != nil {
		return nil, err
	}
	c := &Commit{Version: Version, Kind: kind, Name: name, Parent: parent}
	leaves := make([][]byte, 0, len(payloads))
	for _, p := range payloads {
		sum := sha256.Sum256(p.Data)
		sha := hex.EncodeToString(sum[:])
		if err := a.writeChunk(sha, p.Data); err != nil {
			return nil, err
		}
		c.Chunks = append(c.Chunks, Chunk{Name: p.Name, SHA256: sha, Size: int64(len(p.Data))})
		leaves = append(leaves, sum[:])
	}
	c.Root = hex.EncodeToString(merkleRoot(leaves))

	rec, err := canonical(c)
	if err != nil {
		return nil, err
	}
	c.ID = shaHex(rec)
	if err := writeFileAtomic(a.commitPath(c.ID), rec); err != nil {
		return nil, err
	}
	if err := writeFileAtomic(a.headPath(), []byte(c.ID+"\n")); err != nil {
		return nil, err
	}
	return c, nil
}

// writeChunk stores data under its digest. Content addressing makes the
// write idempotent: an existing chunk file with this name already holds
// these bytes, so it is never rewritten (append-only store).
func (a *Archive) writeChunk(sha string, data []byte) error {
	path := a.chunkPath(sha)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("archive: write chunk %s: %w", short(sha), err)
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash never leaves a half-written record in the store.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// CommitResults seals one completed run — its environment, the spec
// that produced it (omitted when nil), and every job result in commit
// order — into a results commit.
func (a *Archive) CommitResults(name string, spec *core.BenchSpec, results []core.JobResult) (*Commit, error) {
	payloads := make([]Payload, 0, len(results)+2)
	env, err := canonical(CaptureEnv())
	if err != nil {
		return nil, err
	}
	payloads = append(payloads, Payload{Name: ChunkEnv, Data: env})
	if spec != nil {
		b, err := canonical(spec)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, Payload{Name: ChunkSpec, Data: b})
	}
	for i, r := range results {
		b, err := canonical(r)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, Payload{Name: fmt.Sprintf(ChunkResultPattern, i), Data: b})
	}
	return a.commit(KindResults, name, payloads)
}

// ArchiveResults implements core.ResultsArchiver: it seals the batch
// and returns the commit's Merkle root chain ID (the commit ID).
func (a *Archive) ArchiveResults(name string, spec *core.BenchSpec, results []core.JobResult) (string, error) {
	c, err := a.CommitResults(name, spec, results)
	if err != nil {
		return "", err
	}
	return c.ID, nil
}

// CommitBench seals one scripts/bench.sh snapshot verbatim — benchJSON
// is stored byte-for-byte, so the BENCH_<date>.json artifact can be
// re-derived exactly from the archive.
func (a *Archive) CommitBench(name string, benchJSON []byte) (*Commit, error) {
	env, err := canonical(CaptureEnv())
	if err != nil {
		return nil, err
	}
	return a.commit(KindBench, name, []Payload{
		{Name: ChunkEnv, Data: env},
		{Name: ChunkBench, Data: benchJSON},
	})
}

// Results decodes every job result stored in a results commit, in batch
// order, each verified against its recorded digest.
func (a *Archive) Results(c *Commit) ([]core.JobResult, error) {
	if c.Kind != KindResults {
		return nil, fmt.Errorf("archive: commit %s is a %q commit, not %q", short(c.ID), c.Kind, KindResults)
	}
	var out []core.JobResult
	for _, ch := range c.Chunks {
		if !isResultChunk(ch.Name) {
			continue
		}
		b, err := a.ChunkBytes(ch.SHA256)
		if err != nil {
			return nil, err
		}
		var r core.JobResult
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("archive: decode %s: %w", ch.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func isResultChunk(name string) bool {
	return strings.HasPrefix(name, "result-") && strings.HasSuffix(name, ".json")
}

// Env decodes the environment chunk of a commit.
func (a *Archive) Env(c *Commit) (Environment, error) {
	var env Environment
	b, err := a.PayloadBytes(c, ChunkEnv)
	if err != nil {
		return env, err
	}
	if err := json.Unmarshal(b, &env); err != nil {
		return env, fmt.Errorf("archive: decode %s: %w", ChunkEnv, err)
	}
	return env, nil
}

// Spec decodes the spec chunk of a results commit, or nil if the batch
// carried none (a spec chunk is optional; ad-hoc runs have no spec).
func (a *Archive) Spec(c *Commit) (*core.BenchSpec, error) {
	var found bool
	for _, ch := range c.Chunks {
		if ch.Name == ChunkSpec {
			found = true
		}
	}
	if !found {
		return nil, nil
	}
	b, err := a.PayloadBytes(c, ChunkSpec)
	if err != nil {
		return nil, err
	}
	spec, err := core.DecodeSpec(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("archive: decode %s: %w", ChunkSpec, err)
	}
	return spec, nil
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
