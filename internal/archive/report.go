package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"graphalytics/internal/core"
)

// This file renders an archived results commit into the Graphalytics
// reporting schema: the benchmark-results.js data file consumed by the
// reference report site (SNIPPETS.md Snippet 2 — system / environment /
// experiments / jobs / runs), plus a self-contained static HTML page
// that loads it. All IDs are deterministic short hashes of their
// grouping keys, so the same commit always renders byte-identical
// report data.

// ReportData is the top-level benchmark-results.js object.
type ReportData struct {
	ID            string        `json:"id"`
	System        System        `json:"system"`
	Configuration Configuration `json:"configuration"`
	Result        Result        `json:"result"`
}

// System describes the platform and environment under test.
type System struct {
	Platform    PlatformInfo    `json:"platform"`
	Environment EnvironmentInfo `json:"environment"`
	Benchmark   map[string]Tool `json:"benchmark"`
}

// PlatformInfo names the graph-processing platform (or platforms — a
// multi-platform sweep lists them all in Name).
type PlatformInfo struct {
	Name    string `json:"name"`
	Acronym string `json:"acronym"`
	Version string `json:"version"`
	Link    string `json:"link"`
}

// EnvironmentInfo describes the machines the benchmark ran on.
type EnvironmentInfo struct {
	Name     string    `json:"name"`
	Acronym  string    `json:"acronym"`
	Version  string    `json:"version"`
	Link     string    `json:"link"`
	Machines []Machine `json:"machines"`
}

// Machine is one machine shape in the environment.
type Machine struct {
	Quantity int               `json:"quantity"`
	OS       string            `json:"operating-system"`
	CPU      CPU               `json:"cpu"`
	Memory   map[string]string `json:"memory"`
	Network  map[string]string `json:"network"`
	Storage  map[string]string `json:"storage"`
	Accel    map[string]string `json:"accel"`
}

// CPU names the processor and its core count.
type CPU struct {
	Name  string `json:"name"`
	Cores string `json:"cores"`
}

// Tool is one benchmark software component and its version.
type Tool struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Link    string `json:"link"`
}

// Configuration carries the benchmark's target scale and resources.
type Configuration struct {
	TargetScale string              `json:"target-scale"`
	Resources   map[string]Resource `json:"resources"`
}

// Resource is one resource baseline of the configuration.
type Resource struct {
	Name        string  `json:"name"`
	Baseline    float64 `json:"baseline"`
	Scalability bool    `json:"scalability"`
}

// Result holds the experiment/job/run index maps.
type Result struct {
	Experiments map[string]Experiment `json:"experiments"`
	Jobs        map[string]Job        `json:"jobs"`
	Runs        map[string]Run        `json:"runs"`
}

// Experiment groups the jobs of one experiment type (one per
// algorithm, the paper's baseline experiments).
type Experiment struct {
	ID   string   `json:"id"`
	Type string   `json:"type"`
	Jobs []string `json:"jobs"`
}

// Job is one (platform, dataset, algorithm, configuration) cell with
// its repeated runs. Platform is an extension over the reference
// schema so multi-platform sweeps stay distinguishable.
type Job struct {
	ID         string   `json:"id"`
	Algorithm  string   `json:"algorithm"`
	Dataset    string   `json:"dataset"`
	Scale      float64  `json:"scale"`
	Repetition int      `json:"repetition"`
	Runs       []string `json:"runs"`
	Platform   string   `json:"platform,omitempty"`
}

// Run is one execution: epoch-millisecond timestamp, success flag, and
// the paper's run-time breakdown in milliseconds.
type Run struct {
	ID             string `json:"id"`
	Timestamp      int64  `json:"timestamp"`
	Success        bool   `json:"success"`
	Makespan       int64  `json:"makespan"`
	ProcessingTime int64  `json:"processing-time"`
}

// shortID derives a deterministic report ID: prefix + first 8 hex
// digits of the SHA-256 of the key.
func shortID(prefix string, key ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(key, "\x00")))
	return prefix + hex.EncodeToString(sum[:4])
}

// BuildReport renders one archived results commit into the report
// schema. Experiments group jobs per algorithm; jobs group runs per
// (platform, dataset, algorithm, threads, machines); runs carry the
// per-execution timings.
func (a *Archive) BuildReport(c *Commit) (*ReportData, error) {
	results, err := a.Results(c)
	if err != nil {
		return nil, err
	}
	env, err := a.Env(c)
	if err != nil {
		return nil, err
	}
	spec, err := a.Spec(c)
	if err != nil {
		return nil, err
	}

	rep := &ReportData{
		ID: shortID("b", c.ID),
		System: System{
			Platform: platformInfo(results),
			Environment: EnvironmentInfo{
				Name:    fmt.Sprintf("%s/%s", env.OS, env.Arch),
				Acronym: env.OS,
				Version: env.Go,
				Machines: []Machine{{
					Quantity: 1,
					OS:       env.OS,
					CPU:      CPU{Name: env.Arch, Cores: fmt.Sprint(env.CPUs)},
					Memory:   map[string]string{},
					Network:  map[string]string{},
					Storage:  map[string]string{},
					Accel:    map[string]string{},
				}},
			},
			Benchmark: map[string]Tool{
				"graphalytics-go": {
					Name:    env.Harness,
					Version: env.Version + "+" + shortGit(env.Git),
					Link:    "https://ldbcouncil.org/benchmarks/graphalytics/",
				},
			},
		},
		Configuration: Configuration{
			TargetScale: targetScale(results),
			Resources:   resources(results),
		},
		Result: Result{
			Experiments: map[string]Experiment{},
			Jobs:        map[string]Job{},
			Runs:        map[string]Run{},
		},
	}
	if spec != nil {
		rep.System.Benchmark["spec"] = Tool{Name: spec.Name, Version: "1", Link: ""}
	}

	type jobKey struct {
		platform, dataset, algorithm string
		threads, machines            int
	}
	jobOf := map[jobKey]string{}
	for i, r := range results {
		jk := jobKey{r.Spec.Platform, r.Spec.Dataset, string(r.Spec.Algorithm), r.Spec.Threads, r.Spec.Machines}
		jid, ok := jobOf[jk]
		if !ok {
			jid = shortID("j", jk.platform, jk.dataset, jk.algorithm, fmt.Sprint(jk.threads), fmt.Sprint(jk.machines))
			jobOf[jk] = jid
			rep.Result.Jobs[jid] = Job{
				ID:        jid,
				Algorithm: strings.ToLower(string(r.Spec.Algorithm)),
				Dataset:   r.Spec.Dataset,
				Scale:     r.Scale,
				Platform:  r.Spec.Platform,
			}
			etype := "baseline-alg-" + strings.ToLower(string(r.Spec.Algorithm))
			eid := shortID("e", etype)
			exp, ok := rep.Result.Experiments[eid]
			if !ok {
				exp = Experiment{ID: eid, Type: etype}
			}
			exp.Jobs = append(exp.Jobs, jid)
			rep.Result.Experiments[eid] = exp
		}
		rid := shortID("r", jid, fmt.Sprint(i))
		rep.Result.Runs[rid] = Run{
			ID:             rid,
			Timestamp:      r.Timestamp.UnixMilli(),
			Success:        r.Status == core.StatusOK,
			Makespan:       r.Makespan.Milliseconds(),
			ProcessingTime: r.ProcessingTime.Milliseconds(),
		}
		job := rep.Result.Jobs[jid]
		job.Runs = append(job.Runs, rid)
		job.Repetition = len(job.Runs)
		rep.Result.Jobs[jid] = job
	}
	for eid, exp := range rep.Result.Experiments {
		sort.Strings(exp.Jobs)
		rep.Result.Experiments[eid] = exp
	}
	return rep, nil
}

func platformInfo(results []core.JobResult) PlatformInfo {
	seen := map[string]bool{}
	var names []string
	for _, r := range results {
		if !seen[r.Spec.Platform] {
			seen[r.Spec.Platform] = true
			names = append(names, r.Spec.Platform)
		}
	}
	sort.Strings(names)
	name := strings.Join(names, "+")
	if name == "" {
		name = "unknown"
	}
	return PlatformInfo{Name: name, Acronym: name, Version: HarnessVersion,
		Link: "https://ldbcouncil.org/benchmarks/graphalytics/"}
}

// targetScale is the largest T-shirt class seen across the results.
func targetScale(results []core.JobResult) string {
	best := ""
	var bestScale float64 = -1
	for _, r := range results {
		if r.Scale > bestScale {
			bestScale = r.Scale
			best = string(r.Class)
		}
	}
	if best == "" {
		best = "?"
	}
	return best
}

func resources(results []core.JobResult) map[string]Resource {
	maxThreads, maxMachines := 0, 0
	for _, r := range results {
		if r.Spec.Threads > maxThreads {
			maxThreads = r.Spec.Threads
		}
		if r.Spec.Machines > maxMachines {
			maxMachines = r.Spec.Machines
		}
	}
	return map[string]Resource{
		"cpu-core":     {Name: "cpu-core", Baseline: float64(maxThreads), Scalability: true},
		"cpu-instance": {Name: "cpu-instance", Baseline: float64(maxMachines), Scalability: true},
	}
}

func shortGit(rev string) string {
	if len(rev) > 8 {
		return rev[:8]
	}
	if rev == "" {
		return "unknown"
	}
	return rev
}

// WriteReportJS writes the data file: "var results = <json>;" — the
// exact shape the Graphalytics report site loads. The JSON body is
// indented for human diffing; map keys are sorted by the encoder, so
// the output is deterministic.
func WriteReportJS(w io.Writer, rep *ReportData) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: render report: %w", err)
	}
	_, err = fmt.Fprintf(w, "var results = %s;\n", b)
	return err
}

// WriteReportHTML writes a self-contained static report page that
// loads benchmark-results.js from its own directory and renders the
// experiment/job/run tables client-side — no server or framework
// required, so the page works from a file:// checkout of the archive
// as well as from the daemon's /v1/archive endpoints.
func WriteReportHTML(w io.Writer) error {
	_, err := io.WriteString(w, reportHTML)
	return err
}

// WriteReportDir renders commit ref into dir as benchmark-results.js +
// index.html.
func (a *Archive) WriteReportDir(ref, dir string) error {
	id, err := a.Resolve(ref)
	if err != nil {
		return err
	}
	c, err := a.Load(id)
	if err != nil {
		return err
	}
	rep, err := a.BuildReport(c)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("archive: report dir: %w", err)
	}
	var js strings.Builder
	if err := WriteReportJS(&js, rep); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, "benchmark-results.js"), []byte(js.String())); err != nil {
		return err
	}
	var html strings.Builder
	if err := WriteReportHTML(&html); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, "index.html"), []byte(html.String()))
}

const reportHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Graphalytics benchmark report</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1b1b1b; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0 1.5rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; font-size: .9rem; }
th { background: #f2f2f2; }
.ok { color: #176b1e; } .fail { color: #a11212; font-weight: 600; }
code { background: #f5f5f5; padding: 0 .2rem; }
#meta { color: #555; font-size: .9rem; }
</style>
</head>
<body>
<h1>Graphalytics benchmark report</h1>
<p id="meta"></p>
<h2>System</h2>
<table id="system"></table>
<h2>Jobs</h2>
<table id="jobs"></table>
<script src="benchmark-results.js"></script>
<script>
(function () {
  var r = results;
  document.getElementById('meta').textContent =
    'report ' + r.id + ' — platform ' + r.system.platform.name +
    ' — target scale ' + r.configuration['target-scale'];
  var sys = document.getElementById('system');
  var m = r.system.environment.machines[0] || {};
  sys.innerHTML =
    '<tr><th>Platform</th><td>' + r.system.platform.name + ' v' + r.system.platform.version + '</td></tr>' +
    '<tr><th>Environment</th><td>' + r.system.environment.name + ' (' + r.system.environment.version + ')</td></tr>' +
    '<tr><th>Machine</th><td>' + (m.cpu ? m.cpu.name + ' × ' + m.cpu.cores + ' cores' : '?') + '</td></tr>';
  var rows = ['<tr><th>Job</th><th>Platform</th><th>Algorithm</th><th>Dataset</th><th>Scale</th><th>Runs</th><th>Success</th><th>Median makespan (ms)</th><th>Median Tproc (ms)</th></tr>'];
  var jobIds = Object.keys(r.result.jobs).sort();
  function median(xs) {
    if (!xs.length) return NaN;
    var s = xs.slice().sort(function (a, b) { return a - b; });
    return s[Math.floor(s.length / 2)];
  }
  jobIds.forEach(function (jid) {
    var j = r.result.jobs[jid];
    var runs = j.runs.map(function (rid) { return r.result.runs[rid]; });
    var okRuns = runs.filter(function (x) { return x.success; });
    var cls = okRuns.length === runs.length ? 'ok' : 'fail';
    rows.push('<tr><td><code>' + j.id + '</code></td><td>' + (j.platform || '') + '</td><td>' + j.algorithm +
      '</td><td>' + j.dataset + '</td><td>' + j.scale + '</td><td>' + runs.length +
      '</td><td class="' + cls + '">' + okRuns.length + '/' + runs.length +
      '</td><td>' + median(runs.map(function (x) { return x.makespan; })) +
      '</td><td>' + median(runs.map(function (x) { return x['processing-time']; })) + '</td></tr>');
  });
  document.getElementById('jobs').innerHTML = rows.join('');
}());
</script>
</body>
</html>
`
