package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Problem is one integrity failure found by Verify, naming the exact
// commit — and, for chunk damage, the exact chunk — that no longer
// matches its recorded hash.
type Problem struct {
	// Commit is the ID of the commit the problem was found in (or
	// reachable from, for chain breaks).
	Commit string `json:"commit"`
	// Chunk names the damaged chunk inside the batch ("" for problems
	// with the commit record or chain itself).
	Chunk string `json:"chunk,omitempty"`
	// Detail says what failed: the expected and actual digest, a missing
	// file, a size mismatch.
	Detail string `json:"detail"`
}

// String renders the problem as one line for CLI output.
func (p Problem) String() string {
	if p.Chunk != "" {
		return fmt.Sprintf("commit %s chunk %s: %s", short(p.Commit), p.Chunk, p.Detail)
	}
	return fmt.Sprintf("commit %s: %s", short(p.Commit), p.Detail)
}

// VerifyReport is the outcome of a full offline re-derivation of the
// archive: counts of what was checked, and every problem found.
type VerifyReport struct {
	Commits  int       `json:"commits"`
	Chunks   int       `json:"chunks"`
	Bytes    int64     `json:"bytes"`
	Problems []Problem `json:"problems,omitempty"`
}

// OK reports whether the archive verified clean.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Render writes the report in CLI form: one line per problem, then a
// summary line.
func (r *VerifyReport) Render(w io.Writer) {
	for _, p := range r.Problems {
		fmt.Fprintf(w, "FAIL %s\n", p)
	}
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("CORRUPT (%d problems)", len(r.Problems))
	}
	fmt.Fprintf(w, "archive %s: %d commits, %d chunks, %d bytes verified\n",
		status, r.Commits, r.Chunks, r.Bytes)
}

// Verify re-derives every hash in the archive from the bytes on disk:
// each commit record must hash to its own ID (which seals the parent
// chain, since the parent ID is part of those bytes), each commit's
// Merkle root must re-derive from its chunk digests, and each chunk's
// bytes must hash to the digest and size the commit recorded. It checks
// every commit file in the store — not just the chain from HEAD — then
// walks the chain to catch missing parents, cycles, and a HEAD that
// points nowhere. All problems are collected rather than failing fast,
// so one report names every damaged chunk.
func (a *Archive) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	entries, err := os.ReadDir(a.dir + "/commits")
	if err != nil {
		return nil, fmt.Errorf("archive: list commits: %w", err)
	}
	checkedChunks := make(map[string]bool)
	commits := make(map[string]*Commit)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		id := cutSuffix(name, ".json")
		rep.Commits++
		c := a.verifyCommit(id, rep, checkedChunks)
		if c != nil {
			commits[id] = c
		}
	}
	a.verifyChain(rep, commits)
	sort.SliceStable(rep.Problems, func(i, j int) bool {
		if rep.Problems[i].Commit != rep.Problems[j].Commit {
			return rep.Problems[i].Commit < rep.Problems[j].Commit
		}
		return rep.Problems[i].Chunk < rep.Problems[j].Chunk
	})
	return rep, nil
}

// verifyCommit re-derives one commit: record hash, Merkle root, and
// every chunk. Returns the decoded commit (nil when unreadable).
func (a *Archive) verifyCommit(id string, rep *VerifyReport, checkedChunks map[string]bool) *Commit {
	b, err := os.ReadFile(a.commitPath(id))
	if err != nil {
		rep.Problems = append(rep.Problems, Problem{Commit: id, Detail: "commit record unreadable: " + errString(err)})
		return nil
	}
	if got := shaHex(b); got != id {
		rep.Problems = append(rep.Problems, Problem{Commit: id,
			Detail: fmt.Sprintf("commit record tampered: bytes hash to %s", short(got))})
		// Keep going: the decoded contents still tell us which chunks to
		// check, and the damage should be named precisely.
	}
	var c Commit
	if err := json.Unmarshal(b, &c); err != nil {
		rep.Problems = append(rep.Problems, Problem{Commit: id, Detail: "commit record undecodable: " + errString(err)})
		return nil
	}
	c.ID = id

	leaves := make([][]byte, 0, len(c.Chunks))
	for _, ch := range c.Chunks {
		raw, err := hex.DecodeString(ch.SHA256)
		if err != nil || len(raw) != sha256.Size {
			rep.Problems = append(rep.Problems, Problem{Commit: id, Chunk: ch.Name,
				Detail: fmt.Sprintf("recorded digest %q is not a SHA-256", ch.SHA256)})
			continue
		}
		leaves = append(leaves, raw)
		a.verifyChunk(id, ch, rep, checkedChunks)
	}
	if root := hex.EncodeToString(merkleRoot(leaves)); root != c.Root {
		rep.Problems = append(rep.Problems, Problem{Commit: id,
			Detail: fmt.Sprintf("merkle root mismatch: recorded %s, re-derived %s", short(c.Root), short(root))})
	}
	return &c
}

// verifyChunk re-hashes one chunk's bytes against the digest and size
// the commit recorded. A chunk shared by several commits is read once;
// problems are still attributed to every commit that references it.
func (a *Archive) verifyChunk(commitID string, ch Chunk, rep *VerifyReport, checked map[string]bool) {
	b, err := os.ReadFile(a.chunkPath(ch.SHA256))
	if err != nil {
		rep.Problems = append(rep.Problems, Problem{Commit: commitID, Chunk: ch.Name,
			Detail: "chunk missing: " + errString(err)})
		return
	}
	if !checked[ch.SHA256] {
		checked[ch.SHA256] = true
		rep.Chunks++
		rep.Bytes += int64(len(b))
	}
	if int64(len(b)) != ch.Size {
		rep.Problems = append(rep.Problems, Problem{Commit: commitID, Chunk: ch.Name,
			Detail: fmt.Sprintf("chunk truncated or grown: recorded %d bytes, found %d", ch.Size, len(b))})
	}
	if got := shaHex(b); got != ch.SHA256 {
		rep.Problems = append(rep.Problems, Problem{Commit: commitID, Chunk: ch.Name,
			Detail: fmt.Sprintf("chunk corrupt: bytes hash to %s, recorded %s", short(got), short(ch.SHA256))})
	}
}

// verifyChain walks HEAD's parent chain over the already-verified
// commits, flagging a dangling HEAD, missing parents, and cycles.
func (a *Archive) verifyChain(rep *VerifyReport, commits map[string]*Commit) {
	head, err := a.Head()
	if err != nil {
		rep.Problems = append(rep.Problems, Problem{Detail: "HEAD unreadable: " + errString(err)})
		return
	}
	if head == "" {
		if rep.Commits > 0 {
			rep.Problems = append(rep.Problems, Problem{Detail: fmt.Sprintf("no HEAD but %d commits present", rep.Commits)})
		}
		return
	}
	seen := make(map[string]bool)
	id := head
	for id != "" {
		if seen[id] {
			rep.Problems = append(rep.Problems, Problem{Commit: id, Detail: "commit chain cycles"})
			return
		}
		seen[id] = true
		c, ok := commits[id]
		if !ok {
			detail := "parent chain broken: commit record missing"
			if id == head {
				detail = "HEAD points at missing commit"
			}
			rep.Problems = append(rep.Problems, Problem{Commit: id, Detail: detail})
			return
		}
		id = c.Parent
	}
}

func errString(err error) string {
	var pe *os.PathError
	if errors.As(err, &pe) {
		return pe.Op + ": " + pe.Err.Error()
	}
	return err.Error()
}
