package archive

import (
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// HarnessVersion identifies the harness build that produced a commit.
// Bump it when the measurement pipeline changes in a way that makes
// numbers incomparable across archives.
const HarnessVersion = "0.10"

// Environment records where a batch was measured: the toolchain, the
// machine shape, and (best effort) the harness source revision. It
// deliberately contains nothing volatile — no timestamps, no hostnames,
// no entropy — so re-running the same spec on the same machine and
// source tree produces a byte-identical environment chunk and therefore
// a byte-identical commit.
type Environment struct {
	Harness string `json:"harness"`
	Version string `json:"version"`
	Go      string `json:"go"`
	OS      string `json:"os"`
	Arch    string `json:"arch"`
	CPUs    int    `json:"cpus"`
	// Git is the source revision (git rev-parse HEAD), empty when the
	// process runs outside a work tree.
	Git string `json:"git,omitempty"`
}

var (
	envOnce sync.Once
	envVal  Environment
)

// CaptureEnv captures the process environment once and returns the same
// value for the process lifetime, so every commit in one run embeds
// identical environment bytes (which content addressing then stores
// exactly once).
func CaptureEnv() Environment {
	envOnce.Do(func() {
		envVal = Environment{
			Harness: "graphalytics-go",
			Version: HarnessVersion,
			Go:      runtime.Version(),
			OS:      runtime.GOOS,
			Arch:    runtime.GOARCH,
			CPUs:    runtime.NumCPU(),
			Git:     gitRevision(),
		}
	})
	return envVal
}

// gitRevision resolves the source revision, best effort: an archive
// must stay writable from deployments without git or a work tree.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
