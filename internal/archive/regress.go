package archive

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// This file is the cross-run regression engine: it turns two archived
// bench snapshots into per-metric deltas (benchstat-style) and judges
// them against gates — regex-selected hot-path metrics with a noise
// threshold. CI runs it against the committed baseline archive and
// fails the build on a gated regression.

// Gate selects metrics (by regex over the metric key) that must not
// regress by more than Threshold percent. All tracked metrics are
// lower-is-better, so only increases count as regressions.
type Gate struct {
	Pattern   *regexp.Regexp
	Threshold float64 // percent
}

// ParseGate parses "regex" or "regex=pct" into a gate, defaulting the
// threshold to def percent.
func ParseGate(s string, def float64) (Gate, error) {
	pat := s
	thr := def
	if i := strings.LastIndex(s, "="); i >= 0 {
		pat = s[:i]
		if _, err := fmt.Sscanf(s[i+1:], "%f", &thr); err != nil {
			return Gate{}, fmt.Errorf("archive: gate %q: bad threshold %q", s, s[i+1:])
		}
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return Gate{}, fmt.Errorf("archive: gate %q: %w", s, err)
	}
	return Gate{Pattern: re, Threshold: thr}, nil
}

// benchFile mirrors the scripts/bench.sh snapshot shape.
type benchFile struct {
	Date    string       `json:"date"`
	Results []benchEntry `json:"results"`
}

type benchEntry struct {
	Name    string   `json:"name"`
	NsPerOp *float64 `json:"ns_per_op"`
	BPerOp  *float64 `json:"bytes_per_op"`
	Allocs  *float64 `json:"allocs_per_op"`
}

// procSuffix strips go test's "-<GOMAXPROCS>" benchmark-name suffix so
// snapshots taken at different GOMAXPROCS remain comparable by key.
var procSuffix = regexp.MustCompile(`-\d+$`)

// BenchMetrics flattens a bench.sh snapshot into metric keys:
// "<bench>/ns", "<bench>/allocs", "<bench>/B" per benchmark, plus the
// derived "derived/map_open_ratio" (mmap open time at scale 16 over
// scale 12 — the snapshot size-independence hot path from PR 9).
func BenchMetrics(benchJSON []byte) (map[string]float64, error) {
	var f benchFile
	if err := json.Unmarshal(benchJSON, &f); err != nil {
		return nil, fmt.Errorf("archive: decode bench snapshot: %w", err)
	}
	m := make(map[string]float64, 3*len(f.Results))
	for _, r := range f.Results {
		name := procSuffix.ReplaceAllString(r.Name, "")
		if r.NsPerOp != nil {
			m[name+"/ns"] = *r.NsPerOp
		}
		if r.Allocs != nil {
			m[name+"/allocs"] = *r.Allocs
		}
		if r.BPerOp != nil {
			m[name+"/B"] = *r.BPerOp
		}
	}
	s12, ok12 := m["BenchmarkSnapshotMapOpen/scale12/ns"]
	s16, ok16 := m["BenchmarkSnapshotMapOpen/scale16/ns"]
	if ok12 && ok16 && s12 > 0 {
		m["derived/map_open_ratio"] = s16 / s12
	}
	return m, nil
}

// BenchMetricsAt loads the bench snapshot archived in commit ref and
// flattens it into metrics.
func (a *Archive) BenchMetricsAt(ref string) (map[string]float64, error) {
	id, err := a.Resolve(ref)
	if err != nil {
		return nil, err
	}
	c, err := a.Load(id)
	if err != nil {
		return nil, err
	}
	if c.Kind != KindBench {
		return nil, fmt.Errorf("archive: commit %s is a %q commit, not %q", short(id), c.Kind, KindBench)
	}
	b, err := a.PayloadBytes(c, ChunkBench)
	if err != nil {
		return nil, err
	}
	return BenchMetrics(b)
}

// Delta is one metric compared across the two snapshots.
type Delta struct {
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Percent   float64 `json:"percent"`
	Gated     bool    `json:"gated,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Regressed bool    `json:"regressed,omitempty"`
}

// RegressReport is the outcome of one baseline-vs-latest diff.
type RegressReport struct {
	Deltas []Delta `json:"deltas"`
	// Missing lists gated baseline metrics absent from the latest
	// snapshot — a gated hot path silently dropped from the bench run
	// counts as a regression, never as a pass.
	Missing     []string `json:"missing,omitempty"`
	Regressions int      `json:"regressions"`
}

// OK reports whether no gated metric regressed.
func (r *RegressReport) OK() bool { return r.Regressions == 0 }

// Regress diffs latest against baseline. Every metric present in both
// snapshots yields a delta; metrics matching a gate are judged against
// its threshold. A gated metric present in the baseline but missing
// from the latest snapshot is a regression.
func Regress(baseline, latest map[string]float64, gates []Gate) *RegressReport {
	rep := &RegressReport{}
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		old := baseline[k]
		gate, gated := matchGate(gates, k)
		now, ok := latest[k]
		if !ok {
			if gated {
				rep.Missing = append(rep.Missing, k)
				rep.Regressions++
			}
			continue
		}
		d := Delta{Metric: k, Old: old, New: now}
		switch {
		case old == 0 && now == 0:
			d.Percent = 0
		case old == 0:
			d.Percent = 100 // from zero: treat any growth as +100%
		default:
			d.Percent = (now - old) / old * 100
		}
		if gated {
			d.Gated = true
			d.Threshold = gate.Threshold
			d.Regressed = d.Percent > gate.Threshold
			if d.Regressed {
				rep.Regressions++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

func matchGate(gates []Gate, key string) (Gate, bool) {
	for _, g := range gates {
		if g.Pattern.MatchString(key) {
			return g, true
		}
	}
	return Gate{}, false
}

// Render writes the report benchstat-style: one row per metric with
// old/new values and the signed delta, gated rows marked with their
// verdict, then a summary line. When gatedOnly is set, ungated rows
// are suppressed (CI logs stay readable on large snapshots).
func (r *RegressReport) Render(w io.Writer, gatedOnly bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\told\tnew\tdelta\tverdict")
	for _, d := range r.Deltas {
		if gatedOnly && !d.Gated {
			continue
		}
		verdict := ""
		if d.Gated {
			verdict = fmt.Sprintf("ok (gate %.4g%%)", d.Threshold)
			if d.Regressed {
				verdict = fmt.Sprintf("REGRESSED (gate %.4g%%)", d.Threshold)
			}
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%+.1f%%\t%s\n", d.Metric, d.Old, d.New, d.Percent, verdict)
	}
	for _, k := range r.Missing {
		fmt.Fprintf(tw, "%s\t-\t-\t\tMISSING (gated metric dropped)\n", k)
	}
	tw.Flush()
	if r.OK() {
		fmt.Fprintln(w, "regress ok: no gated metric regressed")
	} else {
		fmt.Fprintf(w, "regress FAILED: %d gated regression(s)\n", r.Regressions)
	}
}
