// Package metrics implements the Graphalytics benchmark metrics: the graph
// scale function and its "T-shirt size" classes, the throughput metrics EPS
// and EVPS, the scalability metric speedup, and the robustness metric
// coefficient of variation (Section 2.3 of the paper).
package metrics

import (
	"math"
	"time"
)

// Scale computes the Graphalytics scale of a graph,
// s(V,E) = log10(|V| + |E|), rounded to one decimal place.
func Scale(numVertices int, numEdges int64) float64 {
	total := float64(numVertices) + float64(numEdges)
	if total <= 0 {
		return 0
	}
	return math.Round(math.Log10(total)*10) / 10
}

// Class is a dataset size class ("T-shirt size").
type Class string

// The classes of Table 2. Classes span 0.5 scale units; the reference point
// is class L.
const (
	Class2XS Class = "2XS"
	ClassXS  Class = "XS"
	ClassS   Class = "S"
	ClassM   Class = "M"
	ClassL   Class = "L"
	ClassXL  Class = "XL"
	Class2XL Class = "2XL"
)

// classBounds mirrors Table 2: scale < 7 is 2XS, [7,7.5) XS, [7.5,8) S,
// [8,8.5) M, [8.5,9) L, [9,9.5) XL, >= 9.5 2XL.
var classBounds = []struct {
	upper float64 // exclusive
	class Class
}{
	{7.0, Class2XS},
	{7.5, ClassXS},
	{8.0, ClassS},
	{8.5, ClassM},
	{9.0, ClassL},
	{9.5, ClassXL},
}

// ClassOf maps a scale value to its T-shirt class per Table 2.
func ClassOf(scale float64) Class {
	for _, b := range classBounds {
		if scale < b.upper {
			return b.class
		}
	}
	return Class2XL
}

// ClassOrder returns a small integer ordering classes from 2XS (0) upward,
// for sorting datasets by class.
func ClassOrder(c Class) int {
	switch c {
	case Class2XS:
		return 0
	case ClassXS:
		return 1
	case ClassS:
		return 2
	case ClassM:
		return 3
	case ClassL:
		return 4
	case ClassXL:
		return 5
	default:
		return 6
	}
}

// EPS returns edges per second: |E| / Tproc.
func EPS(numEdges int64, tproc time.Duration) float64 {
	s := tproc.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(numEdges) / s
}

// EVPS returns edges and vertices per second: (|V| + |E|) / Tproc. EVPS is
// closely related to graph scale (|V|+|E| = 10^scale).
func EVPS(numVertices int, numEdges int64, tproc time.Duration) float64 {
	s := tproc.Seconds()
	if s <= 0 {
		return 0
	}
	return (float64(numVertices) + float64(numEdges)) / s
}

// Speedup returns the ratio between baseline and scaled processing time.
// The baseline is the minimum amount of resources with which the platform
// completes the workload.
func Speedup(baseline, scaled time.Duration) float64 {
	if scaled <= 0 {
		return 0
	}
	return baseline.Seconds() / scaled.Seconds()
}

// Mean returns the arithmetic mean of the sample durations, rounded to
// the nearest nanosecond (integer division would truncate toward zero,
// biasing repeated-run means low by up to one unit).
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	n := time.Duration(len(samples))
	if sum >= 0 {
		return (sum + n/2) / n
	}
	return (sum - n/2) / n
}

// CV returns the coefficient of variation of the samples: the ratio between
// the sample standard deviation and the mean. Its advantage as a
// variability metric is independence from the scale of the results.
func CV(samples []time.Duration) float64 {
	if len(samples) < 2 {
		return 0
	}
	mean := Mean(samples).Seconds()
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, s := range samples {
		d := s.Seconds() - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(samples)-1))
	return std / mean
}
