package metrics_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"graphalytics/internal/metrics"
)

func TestScaleAgainstPaperTable3(t *testing.T) {
	// The paper's Table 3 reports scales for its real datasets; the scale
	// function must reproduce them from |V| and |E|.
	cases := []struct {
		name  string
		v     int
		e     int64
		scale float64
	}{
		{"wiki-talk", 2_390_000, 5_020_000, 6.9},
		{"kgs", 830_000, 17_900_000, 7.3},
		{"cit-patents", 3_770_000, 16_500_000, 7.3},
		{"dota-league", 610_000, 50_900_000, 7.7},
		{"com-friendster", 65_600_000, 1_810_000_000, 9.3},
		{"twitter_mpi", 52_600_000, 1_970_000_000, 9.3},
		{"datagen-1000", 12_800_000, 1_010_000_000, 9.0},
		{"graph500-22", 2_400_000, 64_200_000, 7.8},
	}
	for _, tc := range cases {
		if got := metrics.Scale(tc.v, tc.e); got != tc.scale {
			t.Errorf("%s: scale = %v, want %v", tc.name, got, tc.scale)
		}
	}
}

func TestScaleDegenerate(t *testing.T) {
	if got := metrics.Scale(0, 0); got != 0 {
		t.Fatalf("Scale(0,0) = %v, want 0", got)
	}
}

func TestClassOfTable2(t *testing.T) {
	cases := []struct {
		scale float64
		class metrics.Class
	}{
		{6.9, metrics.Class2XS},
		{7.0, metrics.ClassXS},
		{7.3, metrics.ClassXS},
		{7.5, metrics.ClassS},
		{7.7, metrics.ClassS},
		{8.0, metrics.ClassM},
		{8.4, metrics.ClassM},
		{8.5, metrics.ClassL},
		{8.7, metrics.ClassL},
		{9.0, metrics.ClassXL},
		{9.3, metrics.ClassXL},
		{9.5, metrics.Class2XL},
		{11.0, metrics.Class2XL},
	}
	for _, tc := range cases {
		if got := metrics.ClassOf(tc.scale); got != tc.class {
			t.Errorf("ClassOf(%v) = %s, want %s", tc.scale, got, tc.class)
		}
	}
}

func TestClassOrderMonotonic(t *testing.T) {
	ordered := []metrics.Class{
		metrics.Class2XS, metrics.ClassXS, metrics.ClassS, metrics.ClassM,
		metrics.ClassL, metrics.ClassXL, metrics.Class2XL,
	}
	for i := 1; i < len(ordered); i++ {
		if metrics.ClassOrder(ordered[i-1]) >= metrics.ClassOrder(ordered[i]) {
			t.Fatalf("ClassOrder not monotonic at %s", ordered[i])
		}
	}
}

func TestClassMonotonicInScaleProperty(t *testing.T) {
	check := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return metrics.ClassOrder(metrics.ClassOf(a)) <= metrics.ClassOrder(metrics.ClassOf(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEPSAndEVPS(t *testing.T) {
	// The EVPS definition: |V|+|E| = 10^scale divided by Tproc.
	if got := metrics.EPS(2_000_000, time.Second); got != 2e6 {
		t.Fatalf("EPS = %v, want 2e6", got)
	}
	if got := metrics.EVPS(500_000, 1_500_000, 2*time.Second); got != 1e6 {
		t.Fatalf("EVPS = %v, want 1e6", got)
	}
	if metrics.EPS(100, 0) != 0 || metrics.EVPS(1, 1, 0) != 0 {
		t.Fatal("zero Tproc must yield zero throughput, not a division error")
	}
}

func TestSpeedup(t *testing.T) {
	if got := metrics.Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("speedup = %v, want 5", got)
	}
	if metrics.Speedup(time.Second, 0) != 0 {
		t.Fatal("zero scaled time must not divide by zero")
	}
}

func TestMeanAndCV(t *testing.T) {
	samples := []time.Duration{10 * time.Second, 12 * time.Second, 8 * time.Second, 10 * time.Second}
	if got := metrics.Mean(samples); got != 10*time.Second {
		t.Fatalf("mean = %v, want 10s", got)
	}
	// Sample stddev of {10,12,8,10} = sqrt((0+4+4+0)/3) = 1.633; CV = 0.1633.
	cv := metrics.CV(samples)
	if math.Abs(cv-0.16330) > 1e-4 {
		t.Fatalf("CV = %v, want ~0.1633", cv)
	}
	if metrics.CV(samples[:1]) != 0 {
		t.Fatal("CV of a single sample must be 0")
	}
	if metrics.Mean(nil) != 0 {
		t.Fatal("mean of no samples must be 0")
	}
}

func TestCVScaleIndependenceProperty(t *testing.T) {
	// The paper picks CV for its independence of the scale of results:
	// multiplying all samples by a constant must not change it.
	check := func(a, b, c uint16, k uint8) bool {
		if k == 0 {
			return true
		}
		base := []time.Duration{
			time.Duration(a) + time.Millisecond,
			time.Duration(b) + time.Millisecond,
			time.Duration(c) + time.Millisecond,
		}
		scaled := make([]time.Duration, len(base))
		for i, s := range base {
			scaled[i] = s * time.Duration(k)
		}
		c1, c2 := metrics.CV(base), metrics.CV(scaled)
		return math.Abs(c1-c2) <= 1e-7*(c1+c2+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClassOfExactBoundaries pins the half-open interval semantics of
// Table 2 at the outermost edges: a scale of exactly 7.0 is already XS
// (2XS is scale < 7), and exactly 9.5 is already 2XL (XL ends below 9.5).
func TestClassOfExactBoundaries(t *testing.T) {
	if got := metrics.ClassOf(7.0); got != metrics.ClassXS {
		t.Errorf("ClassOf(7.0) = %s, want XS (boundary is inclusive on the upper class)", got)
	}
	if got := metrics.ClassOf(9.5); got != metrics.Class2XL {
		t.Errorf("ClassOf(9.5) = %s, want 2XL (boundary is inclusive on the upper class)", got)
	}
	if got := metrics.ClassOf(math.Nextafter(7.0, 0)); got != metrics.Class2XS {
		t.Errorf("ClassOf(just below 7.0) = %s, want 2XS", got)
	}
	if got := metrics.ClassOf(math.Nextafter(9.5, 0)); got != metrics.ClassXL {
		t.Errorf("ClassOf(just below 9.5) = %s, want XL", got)
	}
}

// TestMeanRoundsToNearest is the regression test for the integer-division
// truncation: means must round to the nearest duration, not toward zero.
func TestMeanRoundsToNearest(t *testing.T) {
	cases := []struct {
		samples []time.Duration
		want    time.Duration
	}{
		{[]time.Duration{1, 2}, 2},    // 1.5 rounds up, truncation gave 1
		{[]time.Duration{1, 1, 2}, 1}, // 1.33 rounds down
		{[]time.Duration{2, 3, 3}, 3}, // 2.67 rounds up, truncation gave 2
		{[]time.Duration{-1, -2}, -2}, // -1.5 rounds away from zero
		{[]time.Duration{0, time.Second}, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := metrics.Mean(tc.samples); got != tc.want {
			t.Errorf("Mean(%v) = %d, want %d", tc.samples, got, tc.want)
		}
	}
}
