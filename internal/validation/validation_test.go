package validation_test

import (
	"math"
	"testing"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/validation"
)

func TestValidateIntExact(t *testing.T) {
	want := &algorithms.Output{Algorithm: algorithms.BFS, Int: []int64{0, 1, 2}}
	got := &algorithms.Output{Algorithm: algorithms.BFS, Int: []int64{0, 1, 2}}
	if rep := validation.Validate(got, want, []int64{10, 20, 30}); !rep.OK || rep.Checked != 3 {
		t.Fatalf("expected OK with 3 checks, got %+v", rep)
	}
	got.Int[1] = 99
	rep := validation.Validate(got, want, []int64{10, 20, 30})
	if rep.OK || rep.Mismatches != 1 {
		t.Fatalf("expected 1 mismatch, got %+v", rep)
	}
	if rep.FirstDiff == "" || rep.Error() == nil {
		t.Fatal("failed report must describe the first diff")
	}
}

func TestValidateFloatEpsilon(t *testing.T) {
	want := &algorithms.Output{Algorithm: algorithms.PR, Float: []float64{0.25, 0.75}}
	got := &algorithms.Output{Algorithm: algorithms.PR, Float: []float64{0.25 + 1e-9, 0.75 - 1e-9}}
	if rep := validation.Validate(got, want, nil); !rep.OK {
		t.Fatalf("tiny float drift must validate: %+v", rep)
	}
	got.Float[0] = 0.26
	if rep := validation.Validate(got, want, nil); rep.OK {
		t.Fatal("1% drift must fail validation")
	}
}

func TestValidateStructuralMismatches(t *testing.T) {
	want := &algorithms.Output{Algorithm: algorithms.BFS, Int: []int64{0}}
	if rep := validation.Validate(nil, want, nil); rep.OK {
		t.Fatal("nil output must fail")
	}
	// Regression: a nil reference used to dereference want.Len() and
	// panic; it must return a failed report like the nil-got branch.
	got := &algorithms.Output{Algorithm: algorithms.BFS, Int: []int64{0}}
	if rep := validation.Validate(got, nil, []int64{10}); rep.OK || rep.FirstDiff == "" || rep.Error() == nil {
		t.Fatalf("nil reference must fail with a diagnostic, got %+v", rep)
	}
	if rep := validation.Validate(nil, nil, nil); rep.OK {
		t.Fatal("nil got and nil want must fail")
	}
	short := &algorithms.Output{Algorithm: algorithms.BFS, Int: []int64{}}
	if rep := validation.Validate(short, want, nil); rep.OK {
		t.Fatal("length mismatch must fail")
	}
	wrongType := &algorithms.Output{Algorithm: algorithms.BFS, Float: []float64{0}}
	if rep := validation.Validate(wrongType, want, nil); rep.OK {
		t.Fatal("type mismatch must fail")
	}
}

// TestValidateParallelDeterministicFirstDiff builds an output large
// enough for the chunked scan to use several workers and checks that
// FirstDiff always names the lowest differing vertex and the count stays
// exact below the cap.
func TestValidateParallelDeterministicFirstDiff(t *testing.T) {
	n := 1 << 16
	ids := make([]int64, n)
	w := make([]int64, n)
	g := make([]int64, n)
	for i := range w {
		ids[i] = int64(i) * 10
		w[i] = int64(i)
		g[i] = int64(i)
	}
	// Mismatches scattered across chunks; the lowest index is 3000.
	for _, v := range []int{50000, 3000, 61000, 30000} {
		g[v] = -1
	}
	want := &algorithms.Output{Algorithm: algorithms.WCC, Int: w}
	got := &algorithms.Output{Algorithm: algorithms.WCC, Int: g}
	rep := validation.Validate(got, want, ids)
	if rep.OK || rep.Mismatches != 4 || rep.Capped {
		t.Fatalf("want exactly 4 uncapped mismatches, got %+v", rep)
	}
	if rep.FirstDiff != "vertex 30000: got -1, want 3000" {
		t.Fatalf("FirstDiff must name the lowest differing vertex: %q", rep.FirstDiff)
	}
}

// TestValidateMismatchCap verifies a massively wrong output is rejected
// without an exact full count: the report is marked capped, still fails,
// and still names the lowest differing vertex.
func TestValidateMismatchCap(t *testing.T) {
	n := 1 << 16
	w := make([]float64, n)
	g := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
		g[i] = -float64(i + 1) // everything differs
	}
	g[0] = w[0] // ...except the very first value
	want := &algorithms.Output{Algorithm: algorithms.PR, Float: w}
	got := &algorithms.Output{Algorithm: algorithms.PR, Float: g}
	rep := validation.Validate(got, want, nil)
	if rep.OK || !rep.Capped {
		t.Fatalf("want a capped failure, got %+v", rep)
	}
	// The capped count clamps to exactly the cap so the report does not
	// depend on how many chunks scanned in parallel.
	if rep.Mismatches != validation.MismatchCap {
		t.Fatalf("capped count %d, want exactly %d", rep.Mismatches, validation.MismatchCap)
	}
	if rep.FirstDiff != "vertex 1: got -2, want 2" {
		t.Fatalf("FirstDiff = %q", rep.FirstDiff)
	}
	if rep.Error() == nil || rep.Error().Error()[:20] != "validation: at least" {
		t.Fatalf("capped error must say 'at least': %v", rep.Error())
	}
}

func TestFloatEquivalent(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.0, 1.0, true},
		{inf, inf, true},
		{inf, 1e18, false},
		{-inf, inf, false},
		{0, 1e-13, true},               // below absolute epsilon
		{1e6, 1e6 * (1 + 1e-7), true},  // below relative epsilon
		{1e6, 1e6 * (1 + 1e-3), false}, // above relative epsilon
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, tc := range cases {
		if got := validation.FloatEquivalent(tc.a, tc.b); got != tc.want {
			t.Errorf("FloatEquivalent(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
