// Package validation implements the benchmark's output validation
// (requirement R3): a platform's output for an algorithm is correct if it
// is equivalent to the reference implementation's output. Integer-valued
// algorithms (BFS, WCC, CDLP) must match exactly; floating-point
// algorithms (PR, LCC, SSSP) are compared with a relative epsilon, since
// platforms may legitimately accumulate sums in different orders.
package validation

import (
	"fmt"
	"math"

	"graphalytics/internal/algorithms"
)

// Tolerances for floating-point outputs.
const (
	// RelEpsilon is the maximum relative difference accepted between a
	// platform value and the reference value.
	RelEpsilon = 1e-6
	// AbsEpsilon accepts tiny absolute differences near zero, where
	// relative error is meaningless.
	AbsEpsilon = 1e-12
)

// Report describes the outcome of validating one output against the
// reference.
type Report struct {
	// OK is true when the outputs are equivalent.
	OK bool
	// Checked is the number of per-vertex values compared.
	Checked int
	// Mismatches is the number of values that differed.
	Mismatches int
	// FirstDiff describes the first differing vertex, for diagnostics.
	FirstDiff string
}

// Error converts a failed report into an error (nil when OK).
func (r Report) Error() error {
	if r.OK {
		return nil
	}
	return fmt.Errorf("validation: %d of %d values differ; first: %s", r.Mismatches, r.Checked, r.FirstDiff)
}

// Validate compares a platform output against the reference output.
// The ids slice maps internal vertex indices to external identifiers for
// diagnostics.
func Validate(got, want *algorithms.Output, ids []int64) Report {
	r := Report{OK: true}
	if got == nil {
		return Report{FirstDiff: "platform produced no output"}
	}
	if want == nil {
		// A missing reference is a harness-side failure, but it must fail
		// validation like the nil-got branch rather than panic.
		return Report{FirstDiff: "no reference output to validate against"}
	}
	if got.Len() != want.Len() {
		return Report{FirstDiff: fmt.Sprintf("output length %d, want %d", got.Len(), want.Len())}
	}
	if got.IsFloat() != want.IsFloat() {
		return Report{FirstDiff: fmt.Sprintf("output type float=%v, want float=%v", got.IsFloat(), want.IsFloat())}
	}
	r.Checked = want.Len()
	record := func(v int, detail string) {
		r.OK = false
		r.Mismatches++
		if r.FirstDiff == "" {
			id := int64(v)
			if v < len(ids) {
				id = ids[v]
			}
			r.FirstDiff = fmt.Sprintf("vertex %d: %s", id, detail)
		}
	}
	if want.Int != nil {
		for v := range want.Int {
			if got.Int[v] != want.Int[v] {
				record(v, fmt.Sprintf("got %d, want %d", got.Int[v], want.Int[v]))
			}
		}
		return r
	}
	for v := range want.Float {
		if !FloatEquivalent(got.Float[v], want.Float[v]) {
			record(v, fmt.Sprintf("got %g, want %g", got.Float[v], want.Float[v]))
		}
	}
	return r
}

// FloatEquivalent reports whether two floating-point output values are
// equal within tolerance. Infinities (unreachable SSSP vertices) must
// match exactly; NaN is never equivalent to anything.
func FloatEquivalent(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) {
		return got == want
	}
	diff := math.Abs(got - want)
	if diff <= AbsEpsilon {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= RelEpsilon*scale
}
