// Package validation implements the benchmark's output validation
// (requirement R3): a platform's output for an algorithm is correct if it
// is equivalent to the reference implementation's output. Integer-valued
// algorithms (BFS, WCC, CDLP) must match exactly; floating-point
// algorithms (PR, LCC, SSSP) are compared with a relative epsilon, since
// platforms may legitimately accumulate sums in different orders.
package validation

import (
	"fmt"
	"math"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/par"
)

// Tolerances for floating-point outputs.
const (
	// RelEpsilon is the maximum relative difference accepted between a
	// platform value and the reference value.
	RelEpsilon = 1e-6
	// AbsEpsilon accepts tiny absolute differences near zero, where
	// relative error is meaningless.
	AbsEpsilon = 1e-12
)

// MismatchCap bounds how many mismatches each comparison chunk tallies
// before it stops scanning: once a chunk has this many, the verdict and
// the first diff can no longer change, so finishing the scan would only
// refine a count nobody acts on. A capped report says so (Capped, its
// Mismatches clamps to exactly MismatchCap so the number is independent
// of how many chunks scanned in parallel, and Error prints "at least").
const MismatchCap = 1000

// Report describes the outcome of validating one output against the
// reference.
type Report struct {
	// OK is true when the outputs are equivalent.
	OK bool
	// Checked is the number of per-vertex values compared.
	Checked int
	// Mismatches is the number of values that differed. When Capped is
	// set, it is a lower bound: scanning stopped early once the verdict
	// was settled.
	Mismatches int
	// Capped reports that at least one comparison chunk hit MismatchCap
	// and stopped counting.
	Capped bool
	// FirstDiff describes the first differing vertex (always the lowest
	// differing index, regardless of how the scan was parallelized).
	FirstDiff string
}

// Error converts a failed report into an error (nil when OK).
func (r Report) Error() error {
	if r.OK {
		return nil
	}
	atLeast := ""
	if r.Capped {
		atLeast = "at least "
	}
	return fmt.Errorf("validation: %s%d of %d values differ; first: %s", atLeast, r.Mismatches, r.Checked, r.FirstDiff)
}

// chunkVerdict is one comparison chunk's tally: mismatch count (capped at
// MismatchCap) and the chunk's first differing index.
type chunkVerdict struct {
	mismatches int
	capped     bool
	first      int // lowest differing index in the chunk, -1 if none
}

// Validate compares a platform output against the reference output.
// The ids slice maps internal vertex indices to external identifiers for
// diagnostics.
//
// The scan is parallelized over internal/par chunks. Determinism: the
// whole report is independent of the worker count. Per-chunk results are
// reduced in chunk order, FirstDiff is taken from the lowest-indexed
// chunk with a mismatch (chunk ranges ascend, so it names the lowest
// differing vertex), and a capped count clamps to exactly MismatchCap —
// the per-chunk early exits never leak into the report. Each chunk stops
// counting at MismatchCap, so validating a massively wrong float output
// costs one early-exiting pass instead of a full sequential scan after
// the verdict is known.
func Validate(got, want *algorithms.Output, ids []int64) Report {
	r := Report{OK: true}
	if got == nil {
		return Report{FirstDiff: "platform produced no output"}
	}
	if want == nil {
		// A missing reference is a harness-side failure, but it must fail
		// validation like the nil-got branch rather than panic.
		return Report{FirstDiff: "no reference output to validate against"}
	}
	if got.Len() != want.Len() {
		return Report{FirstDiff: fmt.Sprintf("output length %d, want %d", got.Len(), want.Len())}
	}
	if got.IsFloat() != want.IsFloat() {
		return Report{FirstDiff: fmt.Sprintf("output type float=%v, want float=%v", got.IsFloat(), want.IsFloat())}
	}
	n := want.Len()
	r.Checked = n
	differs := func(v int) bool { return got.Int[v] != want.Int[v] }
	if want.Int == nil {
		differs = func(v int) bool { return !FloatEquivalent(got.Float[v], want.Float[v]) }
	}
	p := par.Workers(n)
	parts := par.Accumulate(n, p, func(_, lo, hi int) chunkVerdict {
		cv := chunkVerdict{first: -1}
		for v := lo; v < hi; v++ {
			if !differs(v) {
				continue
			}
			if cv.first < 0 {
				cv.first = v
			}
			cv.mismatches++
			if cv.mismatches >= MismatchCap {
				cv.capped = true
				break
			}
		}
		return cv
	})
	first := -1
	for _, cv := range parts { // chunk order == index order
		r.Mismatches += cv.mismatches
		r.Capped = r.Capped || cv.capped
		// Chunks that ran no comparisons come back as zero values, so a
		// chunk's first index only counts when it saw a mismatch.
		if first < 0 && cv.mismatches > 0 {
			first = cv.first
		}
	}
	if r.Capped {
		// How far past the cap the tally got depends on the chunk split;
		// clamp so the reported lower bound is worker-count independent.
		r.Mismatches = MismatchCap
	}
	if first < 0 {
		return r
	}
	r.OK = false
	id := int64(first)
	if first < len(ids) {
		id = ids[first]
	}
	detail := ""
	if want.Int != nil {
		detail = fmt.Sprintf("got %d, want %d", got.Int[first], want.Int[first])
	} else {
		detail = fmt.Sprintf("got %g, want %g", got.Float[first], want.Float[first])
	}
	r.FirstDiff = fmt.Sprintf("vertex %d: %s", id, detail)
	return r
}

// FloatEquivalent reports whether two floating-point output values are
// equal within tolerance. Infinities (unreachable SSSP vertices) must
// match exactly; NaN is never equivalent to anything.
func FloatEquivalent(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) {
		return got == want
	}
	diff := math.Abs(got - want)
	if diff <= AbsEpsilon {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= RelEpsilon*scale
}
