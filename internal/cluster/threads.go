package cluster

import (
	"time"

	"graphalytics/internal/par"
)

// Threads simulates a machine's thread pool. The reproduction may run on
// hosts with a single core (as this one's calibration environment does),
// where real goroutine parallelism cannot demonstrate vertical
// scalability, so thread-parallel regions are executed chunk by chunk on
// the calling goroutine, each chunk is timed, and the modeled parallel
// duration of the region is
//
//	max(chunk durations) + spawnCost * (chunks - 1)
//
// The difference between the sequential total and the modeled duration is
// accumulated as a "discount" that RunRound subtracts from the machine's
// measured wall time. Everything outside Chunks regions (message
// delivery, merges, barriers) stays at full measured cost, so Amdahl
// behavior — sequential sections capping speedup — emerges honestly, as
// does imbalance across chunks.
type Threads struct {
	count    int
	discount time.Duration
}

// spawnCost is the modeled per-additional-thread coordination cost of one
// parallel region (goroutine wake-up plus barrier hand-off).
const spawnCost = 2 * time.Microsecond

// Count returns the thread budget.
func (t *Threads) Count() int { return t.count }

// Chunks partitions [0, n) into at most Count contiguous ranges and runs
// fn for each, modeling their parallel execution.
func (t *Threads) Chunks(n int, fn func(lo, hi int)) {
	t.ChunksIndexed(n, func(_, lo, hi int) { fn(lo, hi) })
}

// ChunksIndexed is Chunks with the worker slot exposed. Worker indices are
// in [0, min(Count, n)).
func (t *Threads) ChunksIndexed(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	threads := t.count
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		fn(0, 0, n)
		return
	}
	// Chunk geometry is shared with the real parallel runtime
	// (par.ChunkRange), so a simulated thread and a par worker with the
	// same (n, p, w) always see the same index range.
	var seqTotal, maxChunk time.Duration
	for w := 0; w < threads; w++ {
		lo, hi := par.ChunkRange(n, threads, w)
		start := now()
		fn(w, lo, hi)
		d := now().Sub(start)
		seqTotal += d
		if d > maxChunk {
			maxChunk = d
		}
	}
	modeled := maxChunk + spawnCost*time.Duration(threads-1)
	if saved := seqTotal - modeled; saved > 0 {
		t.discount += saved
	}
}

// For runs fn(i) for every i in [0, n) across the simulated threads.
func (t *Threads) For(n int, fn func(i int)) {
	t.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
