package cluster_test

import (
	"testing"
	"time"

	"graphalytics/internal/cluster"
)

// steppingClock returns a fake clock that advances step on every read,
// so each (start, end) measurement pair yields exactly step.
func steppingClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// TestFrozenClockMeasuresNothing pins the wallclock contract the lint
// suite enforces: all compute-time measurement goes through the injected
// seam, so with a frozen clock the compute component of simulated time
// is exactly zero no matter how much host time the round really burned —
// only the modeled network cost remains.
func TestFrozenClockMeasuresNothing(t *testing.T) {
	frozen := time.Unix(42, 0)
	restore := cluster.SetClockForTesting(func() time.Time { return frozen })
	defer restore()

	c := cluster.New(cluster.Config{Machines: 2, Threads: 4, Net: cluster.DefaultNetwork()})
	if err := c.RunRound(func(m int, th *cluster.Threads) error {
		sink := 0
		th.Chunks(1<<14, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink += i * i
			}
		})
		c.Send(m, (m+1)%2, 1<<20)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.RunBarrier(func() {})

	if got, net := c.SimulatedTime(), c.NetworkTime(); got != net {
		t.Fatalf("SimulatedTime = %v, NetworkTime = %v: compute component %v leaked past the frozen clock", got, net, got-net)
	}
	if c.NetworkTime() == 0 {
		t.Fatal("NetworkTime = 0, want modeled cost for 1 MiB of egress")
	}
}

// TestSteppingClockReplaysExactly drives the seam with a deterministic
// stepping clock: every measurement pair reads the clock twice, so the
// accumulated simulated time is an exact, replayable function of the
// round schedule.
func TestSteppingClockReplaysExactly(t *testing.T) {
	const step = 5 * time.Millisecond
	run := func() time.Duration {
		restore := cluster.SetClockForTesting(steppingClock(step))
		defer restore()
		c := cluster.New(cluster.Config{Machines: 1, Threads: 1})
		for r := 0; r < 3; r++ {
			if err := c.RunRound(func(int, *cluster.Threads) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		c.RunBarrier(func() {})
		return c.SimulatedTime()
	}

	// 3 rounds + 1 barrier, each bracketed by one start/end clock pair.
	want := 4 * step
	first := run()
	if first != want {
		t.Fatalf("SimulatedTime = %v, want %v", first, want)
	}
	if second := run(); second != first {
		t.Fatalf("replay diverged: %v then %v", first, second)
	}
}
