package cluster_test

import (
	"testing"
	"time"

	"graphalytics/internal/cluster"
)

// threadsOf builds a Threads handle through a cluster round, the only way
// engines obtain one.
func threadsOf(t *testing.T, count int, use func(th *cluster.Threads)) time.Duration {
	t.Helper()
	c := cluster.New(cluster.Config{Machines: 1, Threads: count})
	if err := c.RunRound(func(_ int, th *cluster.Threads) error {
		use(th)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return c.SimulatedTime()
}

// minSimTime measures a round several times and keeps the fastest: the
// timing tests share the host with other package test binaries, and the
// minimum filters out runs inflated by descheduling.
func minSimTime(t *testing.T, count int, use func(th *cluster.Threads)) time.Duration {
	t.Helper()
	best := threadsOf(t, count, use)
	for i := 0; i < 2; i++ {
		if d := threadsOf(t, count, use); d < best {
			best = d
		}
	}
	return best
}

func TestThreadsCoversRange(t *testing.T) {
	for _, count := range []int{1, 3, 8} {
		seen := make([]int, 100)
		threadsOf(t, count, func(th *cluster.Threads) {
			if th.Count() != count {
				t.Fatalf("Count = %d, want %d", th.Count(), count)
			}
			th.Chunks(len(seen), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", count, i, c)
			}
		}
	}
}

func TestThreadsIndexedWorkersDistinct(t *testing.T) {
	threadsOf(t, 4, func(th *cluster.Threads) {
		used := make(map[int]bool)
		th.ChunksIndexed(100, func(w, lo, hi int) {
			if used[w] {
				t.Fatalf("worker slot %d reused", w)
			}
			if w < 0 || w >= 4 {
				t.Fatalf("worker slot %d out of range", w)
			}
			used[w] = true
		})
		if len(used) != 4 {
			t.Fatalf("used %d worker slots, want 4", len(used))
		}
	})
}

func TestThreadsFor(t *testing.T) {
	sum := 0
	threadsOf(t, 4, func(th *cluster.Threads) {
		th.For(10, func(i int) { sum += i })
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestThreadsZeroWork(t *testing.T) {
	threadsOf(t, 4, func(th *cluster.Threads) {
		th.Chunks(0, func(lo, hi int) { t.Fatal("must not run for n=0") })
	})
}

func TestThreadsDiscountReducesSimulatedTime(t *testing.T) {
	// A perfectly parallel region must be cheaper on more simulated
	// threads: burn a measurable, even amount of CPU per element.
	burn := func(th *cluster.Threads) {
		th.Chunks(64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := 1.0
				for k := 0; k < 40000; k++ {
					x = x*1.0000001 + float64(k%3)
				}
				_ = x
			}
		})
	}
	serial := minSimTime(t, 1, burn)
	parallel := minSimTime(t, 8, burn)
	if parallel >= serial {
		t.Fatalf("8 simulated threads (%v) not faster than 1 (%v)", parallel, serial)
	}
	// The modeled speedup must not exceed the thread count.
	if float64(serial)/float64(parallel) > 8.5 {
		t.Fatalf("speedup %v exceeds the thread count", float64(serial)/float64(parallel))
	}
}

func TestThreadsSequentialWorkNotDiscounted(t *testing.T) {
	// Work outside Chunks regions must be charged in full regardless of
	// the thread budget.
	burnSequential := func(th *cluster.Threads) {
		x := 1.0
		for k := 0; k < 3_000_000; k++ {
			x = x*1.0000001 + float64(k%3)
		}
		_ = x
	}
	serial := minSimTime(t, 1, burnSequential)
	parallel := minSimTime(t, 8, burnSequential)
	ratio := float64(serial) / float64(parallel)
	if ratio > 2 || ratio < 0.5 {
		t.Fatalf("sequential work changed by %vx across thread budgets", ratio)
	}
}
