package cluster

import "graphalytics/internal/graph"

// VertexPartition assigns every vertex of a graph to a machine (an
// edge-cut). Distributed engines with vertex-centric or matrix models use
// it to split state and route messages.
type VertexPartition struct {
	Machines int
	// Owner[v] is the machine owning internal vertex v.
	Owner []int32
	// Verts[m] lists the internal vertices owned by machine m, ascending.
	Verts [][]int32
}

// PartitionVerticesRange splits vertices into contiguous ranges balanced by
// out-degree (edge-balanced 1-D partitioning, as used by matrix engines).
func PartitionVerticesRange(g *graph.Graph, machines int) *VertexPartition {
	n := g.NumVertices()
	p := &VertexPartition{
		Machines: machines,
		Owner:    make([]int32, n),
		Verts:    make([][]int32, machines),
	}
	var totalWork int64
	for v := int32(0); v < int32(n); v++ {
		totalWork += int64(g.OutDegree(v)) + 1
	}
	target := totalWork / int64(machines)
	m := int32(0)
	var acc int64
	for v := int32(0); v < int32(n); v++ {
		if acc >= target && int(m) < machines-1 {
			m++
			acc = 0
		}
		p.Owner[v] = m
		p.Verts[m] = append(p.Verts[m], v)
		acc += int64(g.OutDegree(v)) + 1
	}
	return p
}

// PartitionVerticesHash assigns vertices to machines by hashing the
// internal index (modulo), the classic Pregel placement.
func PartitionVerticesHash(n, machines int) *VertexPartition {
	p := &VertexPartition{
		Machines: machines,
		Owner:    make([]int32, n),
		Verts:    make([][]int32, machines),
	}
	for v := 0; v < n; v++ {
		m := int32(v % machines)
		p.Owner[v] = m
		p.Verts[m] = append(p.Verts[m], int32(v))
	}
	return p
}

// CutEdges counts edges whose endpoints live on different machines (the
// communication volume driver for edge-cut partitionings).
func (p *VertexPartition) CutEdges(g *graph.Graph) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, u := range g.OutNeighbors(v) {
			if p.Owner[v] != p.Owner[u] {
				cut++
			}
		}
	}
	if !g.Directed() {
		cut /= 2
	}
	return cut
}

// EdgePartition assigns every directed arc of a graph to a machine (a
// vertex-cut, as used by the gather-apply-scatter model). Each vertex has a
// master machine and mirror replicas on every other machine that holds at
// least one of its arcs.
type EdgePartition struct {
	Machines int
	// Arcs[m] lists (src, dst) internal-index pairs assigned to machine m.
	Arcs [][]Arc
	// Master[v] is the machine holding vertex v's master replica.
	Master []int32
	// Replicas[v] lists machines (including the master) holding v.
	Replicas [][]int32
}

// Arc is one directed arc in internal-index space.
type Arc struct{ Src, Dst int32 }

// PartitionEdges builds a vertex-cut: arcs are placed by a deterministic
// hash of the edge, masters by vertex hash. For undirected graphs each
// edge contributes both arc directions to the same machine.
func PartitionEdges(g *graph.Graph, machines int) *EdgePartition {
	n := g.NumVertices()
	p := &EdgePartition{
		Machines: machines,
		Arcs:     make([][]Arc, machines),
		Master:   make([]int32, n),
		Replicas: make([][]int32, n),
	}
	present := make([][]bool, machines)
	for m := range present {
		present[m] = make([]bool, n)
	}
	for v := int32(0); v < int32(n); v++ {
		p.Master[v] = int32(int(v) % machines)
		present[p.Master[v]][v] = true
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.OutNeighbors(v) {
			if !g.Directed() && u < v {
				continue // place each undirected edge once
			}
			m := edgeMachine(v, u, machines)
			p.Arcs[m] = append(p.Arcs[m], Arc{Src: v, Dst: u})
			if !g.Directed() {
				p.Arcs[m] = append(p.Arcs[m], Arc{Src: u, Dst: v})
			}
			present[m][v] = true
			present[m][u] = true
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for m := 0; m < machines; m++ {
			if present[m][v] {
				p.Replicas[v] = append(p.Replicas[v], int32(m))
			}
		}
	}
	return p
}

// edgeMachine deterministically places an arc on a machine.
func edgeMachine(src, dst int32, machines int) int {
	h := uint64(uint32(src))*0x9e3779b97f4a7c15 ^ uint64(uint32(dst))*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(machines))
}

// ReplicationFactor returns the average number of replicas per vertex, the
// vertex-cut quality metric from the PowerGraph paper.
func (p *EdgePartition) ReplicationFactor() float64 {
	if len(p.Replicas) == 0 {
		return 0
	}
	var total int
	for _, r := range p.Replicas {
		total += len(r)
	}
	return float64(total) / float64(len(p.Replicas))
}
