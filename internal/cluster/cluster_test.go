package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"graphalytics/internal/cluster"
	"graphalytics/internal/graph"
)

func TestConfigNormalize(t *testing.T) {
	cfg := cluster.Config{}.Normalize()
	if cfg.Machines != 1 || cfg.Threads != 1 {
		t.Fatalf("normalized config = %+v, want 1 machine, 1 thread", cfg)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 2, MemoryPerMachine: 100})
	if err := c.Alloc(0, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc(0, 50); !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	var oom *cluster.OOMError
	err := c.Alloc(0, 50)
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *OOMError", err)
	}
	if oom.Machine != 0 || oom.Requested != 50 || oom.InUse != 60 || oom.Budget != 100 {
		t.Fatalf("OOM details wrong: %+v", oom)
	}
	// The other machine has its own budget.
	if err := c.Alloc(1, 90); err != nil {
		t.Fatal(err)
	}
	c.Free(0, 60)
	if err := c.Alloc(0, 90); err != nil {
		t.Fatal(err)
	}
	if got := c.PeakMemory(); got != 90 {
		t.Fatalf("peak = %d, want 90", got)
	}
}

func TestFreeClampsAtZero(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 1, MemoryPerMachine: 10})
	c.Free(0, 100)
	if err := c.Alloc(0, 10); err != nil {
		t.Fatalf("over-free must not create negative usage: %v", err)
	}
}

func TestUnlimitedMemory(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 1})
	if err := c.Alloc(0, 1<<40); err != nil {
		t.Fatalf("zero budget must mean unlimited: %v", err)
	}
}

func TestTrafficAndRounds(t *testing.T) {
	net := cluster.NetworkModel{Latency: time.Millisecond, BandwidthBytesPerSec: 1000}
	c := cluster.New(cluster.Config{Machines: 2, Net: net})
	if err := c.RunRound(func(m int, _ *cluster.Threads) error {
		if m == 0 {
			c.Send(0, 1, 500)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", c.Rounds())
	}
	if c.Traffic() != 500 {
		t.Fatalf("traffic = %d, want 500", c.Traffic())
	}
	// 500 bytes at 1000 B/s = 500ms, plus 1ms latency.
	want := 501 * time.Millisecond
	if got := c.NetworkTime(); got != want {
		t.Fatalf("network time = %v, want %v", got, want)
	}
	if c.SimulatedTime() < want {
		t.Fatalf("simulated time %v must include network %v", c.SimulatedTime(), want)
	}
}

func TestIntraMachineSendIsFree(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 2, Net: cluster.DefaultNetwork()})
	c.Send(1, 1, 1<<30)
	if c.Traffic() != 0 {
		t.Fatal("intra-machine transfers must not count as traffic")
	}
}

func TestSingleMachineHasNoNetworkTime(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 1, Net: cluster.DefaultNetwork()})
	if err := c.RunRound(func(int, *cluster.Threads) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c.NetworkTime() != 0 {
		t.Fatalf("network time = %v, want 0 on one machine", c.NetworkTime())
	}
}

func TestBroadcast(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 4})
	c.Broadcast(0, 100)
	if c.Traffic() != 300 {
		t.Fatalf("broadcast traffic = %d, want 100 bytes to each of 3 peers", c.Traffic())
	}
}

func TestRunRoundPropagatesError(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 3})
	wantErr := errors.New("boom")
	err := c.RunRound(func(m int, _ *cluster.Threads) error {
		if m == 1 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestResetTime(t *testing.T) {
	c := cluster.New(cluster.Config{Machines: 2, Net: cluster.DefaultNetwork()})
	_ = c.RunRound(func(m int, _ *cluster.Threads) error { c.Send(m, (m+1)%2, 100); return nil })
	c.ResetTime()
	if c.Rounds() != 0 || c.Traffic() != 0 || c.NetworkTime() != 0 || c.SimulatedTime() != 0 {
		t.Fatal("ResetTime must clear all time accounting")
	}
}

func TestNetworkModelRoundTime(t *testing.T) {
	m := cluster.NetworkModel{Latency: time.Millisecond, BandwidthBytesPerSec: 1e6}
	if got := m.RoundTime(0); got != time.Millisecond {
		t.Fatalf("empty round = %v, want latency only", got)
	}
	if got := m.RoundTime(1e6); got != time.Millisecond+time.Second {
		t.Fatalf("1MB round = %v, want 1.001s", got)
	}
	zero := cluster.NetworkModel{Latency: time.Millisecond}
	if got := zero.RoundTime(1e9); got != time.Millisecond {
		t.Fatalf("zero bandwidth must charge latency only, got %v", got)
	}
}

func buildTestGraph(t *testing.T, directed bool) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := int64(0); i < 40; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: (i + 1) % 40})
		edges = append(edges, graph.Edge{Src: i, Dst: (i + 7) % 40})
	}
	g, err := graph.FromEdges("t", directed, false, edges, graph.BuildOptions{DedupEdges: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionVerticesRangeCoversAll(t *testing.T) {
	g := buildTestGraph(t, true)
	p := cluster.PartitionVerticesRange(g, 4)
	seen := make(map[int32]bool)
	for m, verts := range p.Verts {
		for _, v := range verts {
			if p.Owner[v] != int32(m) {
				t.Fatalf("owner mismatch for %d", v)
			}
			if seen[v] {
				t.Fatalf("vertex %d assigned twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("partition covers %d vertices, want %d", len(seen), g.NumVertices())
	}
}

func TestPartitionVerticesHash(t *testing.T) {
	p := cluster.PartitionVerticesHash(10, 3)
	for v := 0; v < 10; v++ {
		if got := p.Owner[v]; got != int32(v%3) {
			t.Fatalf("owner[%d] = %d, want %d", v, got, v%3)
		}
	}
}

func TestCutEdges(t *testing.T) {
	g := buildTestGraph(t, false)
	one := cluster.PartitionVerticesRange(g, 1)
	if got := one.CutEdges(g); got != 0 {
		t.Fatalf("single machine cut = %d, want 0", got)
	}
	four := cluster.PartitionVerticesRange(g, 4)
	if got := four.CutEdges(g); got <= 0 || got > g.NumEdges() {
		t.Fatalf("4-machine cut = %d, out of range (0, %d]", got, g.NumEdges())
	}
}

func TestPartitionEdgesInvariants(t *testing.T) {
	for _, directed := range []bool{true, false} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			g := buildTestGraph(t, directed)
			p := cluster.PartitionEdges(g, 4)
			var arcs int64
			for _, list := range p.Arcs {
				arcs += int64(len(list))
			}
			wantArcs := g.NumEdges()
			if !directed {
				wantArcs *= 2
			}
			if arcs != wantArcs {
				t.Fatalf("total arcs = %d, want %d", arcs, wantArcs)
			}
			rf := p.ReplicationFactor()
			if rf < 1 || rf > 4 {
				t.Fatalf("replication factor = %v, out of [1, machines]", rf)
			}
			// Every vertex's master must be among its replicas.
			for v, reps := range p.Replicas {
				found := false
				for _, m := range reps {
					if m == p.Master[v] {
						found = true
					}
				}
				if !found {
					t.Fatalf("vertex %d: master %d not in replicas %v", v, p.Master[v], reps)
				}
			}
		})
	}
}

func TestReplicationFactorSingleMachine(t *testing.T) {
	g := buildTestGraph(t, true)
	p := cluster.PartitionEdges(g, 1)
	if rf := p.ReplicationFactor(); rf != 1 {
		t.Fatalf("replication factor on 1 machine = %v, want 1", rf)
	}
}

func TestSimulatedTimeMonotoneInRoundsProperty(t *testing.T) {
	check := func(rounds uint8) bool {
		c := cluster.New(cluster.Config{Machines: 2, Net: cluster.DefaultNetwork()})
		var prev time.Duration
		for i := 0; i < int(rounds%16); i++ {
			_ = c.RunRound(func(m int, _ *cluster.Threads) error { c.Send(m, (m+1)%2, 64); return nil })
			if c.SimulatedTime() < prev {
				return false
			}
			prev = c.SimulatedTime()
		}
		return c.Rounds() == int(rounds%16)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
