package cluster

import "time"

// now is the package's clock seam. All simulated-cost measurement reads it
// instead of calling time.Now directly (enforced by graphalint's wallclock
// analyzer), so tests can substitute a deterministic clock and replay a
// round schedule bit-for-bit. Swapped only from tests, before any cluster
// activity; production code never reassigns it.
var now func() time.Time = time.Now

// SetClockForTesting installs a replacement clock and returns a restore
// function. It exists for deterministic-time tests; calling it while a
// round is executing is a race.
func SetClockForTesting(clock func() time.Time) (restore func()) {
	prev := now
	now = clock
	return func() { now = prev }
}
