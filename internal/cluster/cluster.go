// Package cluster simulates the deployment substrate of the benchmark: a
// set of machines with a thread budget, a per-machine memory budget, and a
// network connecting them.
//
// The paper runs platforms on the DAS-5 cluster; this repository runs all
// engines in one process and substitutes a deterministic deployment model:
//
//   - Machines execute rounds (supersteps) of real computation; the package
//     measures each machine's compute time.
//   - Engines account every byte they ship between machines; a network
//     model (latency per barrier plus bytes over bandwidth) converts the
//     recorded traffic into network time.
//   - The simulated processing time of a distributed run is the sum over
//     rounds of the slowest machine's measured compute plus the modeled
//     network time of that round.
//   - Engines register their data-structure allocations against the
//     per-machine memory budget; exceeding it fails the job with an
//     out-of-memory error, which is what the benchmark's stress test
//     probes.
//
// This preserves the *shape* of horizontal scaling (less compute per
// machine, more communication) without requiring real hardware.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// NetworkModel converts recorded traffic into modeled transfer time.
type NetworkModel struct {
	// Latency is charged once per machine pair synchronization round
	// (barrier), covering message setup and the barrier itself.
	Latency time.Duration
	// BandwidthBytesPerSec is the per-machine NIC bandwidth; the slowest
	// machine's egress volume bounds a round.
	BandwidthBytesPerSec float64
}

// DefaultNetwork approximates the paper's testbed baseline interconnect
// (1 Gbit/s Ethernet): 125 MB/s with a 100 microsecond barrier cost.
func DefaultNetwork() NetworkModel {
	return NetworkModel{Latency: 100 * time.Microsecond, BandwidthBytesPerSec: 125e6}
}

// RoundTime models the network cost of one synchronization round in which
// the busiest machine sent maxEgressBytes to other machines.
func (m NetworkModel) RoundTime(maxEgressBytes int64) time.Duration {
	if maxEgressBytes <= 0 {
		return m.Latency
	}
	if m.BandwidthBytesPerSec <= 0 {
		return m.Latency
	}
	transfer := time.Duration(float64(maxEgressBytes) / m.BandwidthBytesPerSec * float64(time.Second))
	return m.Latency + transfer
}

// Config describes a simulated deployment.
type Config struct {
	// Machines is the number of simulated machines (horizontal resources).
	Machines int
	// Threads is the number of worker threads per machine (vertical
	// resources).
	Threads int
	// MemoryPerMachine is the per-machine memory budget in bytes; zero
	// means unlimited.
	MemoryPerMachine int64
	// Net is the interconnect model; the zero value disables network cost.
	Net NetworkModel
}

// Normalize returns cfg with zero fields replaced by minimal defaults
// (one machine, one thread).
func (cfg Config) Normalize() Config {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	return cfg
}

// ErrOutOfMemory is wrapped by allocation failures against the per-machine
// memory budget.
var ErrOutOfMemory = errors.New("cluster: machine out of memory")

// OOMError reports which machine exceeded its budget and by how much.
type OOMError struct {
	Machine   int
	Requested int64
	InUse     int64
	Budget    int64
}

// Error implements the error interface.
func (e *OOMError) Error() string {
	return fmt.Sprintf("cluster: machine %d out of memory: %d bytes requested, %d in use, budget %d",
		e.Machine, e.Requested, e.InUse, e.Budget)
}

// Unwrap makes errors.Is(err, ErrOutOfMemory) succeed.
func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Cluster is one simulated deployment. Engines share a Cluster per job; it
// tracks memory, traffic and simulated time.
type Cluster struct {
	cfg Config

	mu       sync.Mutex
	memInUse []int64
	memPeak  []int64
	egress   []int64 // bytes sent by each machine in the current round
	rounds   int
	netTime  time.Duration
	simTime  time.Duration
	traffic  int64
}

// New creates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.Normalize()
	return &Cluster{
		cfg:      cfg,
		memInUse: make([]int64, cfg.Machines),
		memPeak:  make([]int64, cfg.Machines),
		egress:   make([]int64, cfg.Machines),
	}
}

// Machines returns the number of simulated machines.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Threads returns the per-machine thread budget.
func (c *Cluster) Threads() int { return c.cfg.Threads }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Alloc registers bytes of engine data-structure memory on a machine,
// failing with an OOMError when the budget would be exceeded.
func (c *Cluster) Alloc(machine int, bytes int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.memInUse[machine] + bytes
	if c.cfg.MemoryPerMachine > 0 && next > c.cfg.MemoryPerMachine {
		return &OOMError{Machine: machine, Requested: bytes, InUse: c.memInUse[machine], Budget: c.cfg.MemoryPerMachine}
	}
	c.memInUse[machine] = next
	if next > c.memPeak[machine] {
		c.memPeak[machine] = next
	}
	return nil
}

// Free releases previously registered memory.
func (c *Cluster) Free(machine int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memInUse[machine] -= bytes
	if c.memInUse[machine] < 0 {
		c.memInUse[machine] = 0
	}
}

// PeakMemory returns the highest per-machine memory registration observed.
func (c *Cluster) PeakMemory() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var peak int64
	for _, p := range c.memPeak {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// Send records that machine from shipped bytes to machine to during the
// current round. Intra-machine transfers are free.
func (c *Cluster) Send(from, to int, bytes int64) {
	if from == to || bytes <= 0 {
		return
	}
	c.mu.Lock()
	c.egress[from] += bytes
	c.traffic += bytes
	c.mu.Unlock()
}

// Broadcast records that machine from shipped bytesPerPeer to every other
// machine in the current round (the allgather pattern used by dense vector
// exchanges).
func (c *Cluster) Broadcast(from int, bytesPerPeer int64) {
	if bytesPerPeer <= 0 || c.cfg.Machines <= 1 {
		return
	}
	total := bytesPerPeer * int64(c.cfg.Machines-1)
	c.mu.Lock()
	c.egress[from] += total
	c.traffic += total
	c.mu.Unlock()
}

// RunRound executes fn for every machine, measures per-machine compute
// time, closes the round's traffic, and charges the round to simulated
// time as max(compute) + network. Machines run sequentially so that
// per-machine timing is not distorted by host-core contention; fn
// receives the machine's simulated thread pool, whose parallel regions
// are discounted from the measured wall time (see Threads).
//
// The first machine error aborts the round and is returned.
func (c *Cluster) RunRound(fn func(machine int, th *Threads) error) error {
	var maxCompute time.Duration
	th := &Threads{}
	for m := 0; m < c.cfg.Machines; m++ {
		*th = Threads{count: c.cfg.Threads}
		start := now()
		if err := fn(m, th); err != nil {
			return fmt.Errorf("cluster: machine %d: %w", m, err)
		}
		d := now().Sub(start) - th.discount
		if d < 0 {
			d = 0
		}
		if d > maxCompute {
			maxCompute = d
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var maxEgress int64
	for m := range c.egress {
		if c.egress[m] > maxEgress {
			maxEgress = c.egress[m]
		}
		c.egress[m] = 0
	}
	c.rounds++
	var net time.Duration
	if c.cfg.Machines > 1 {
		net = c.cfg.Net.RoundTime(maxEgress)
	}
	c.netTime += net
	c.simTime += maxCompute + net
	return nil
}

// RunBarrier executes fn — cross-machine barrier work such as delivering
// staged messages into the next round's inboxes — and charges its
// measured duration to simulated time as sequential barrier cost. It
// closes no round and models no network: engines account the shuffled
// bytes via Send from within the producing round. This keeps work that
// structurally belongs between rounds (a global scatter cannot run
// inside any one machine's slice of a round) inside the measured
// processing time, where the equivalent per-machine delivery work of an
// append-based inbox would have been.
func (c *Cluster) RunBarrier(fn func()) {
	start := now()
	fn()
	d := now().Sub(start)
	c.mu.Lock()
	c.simTime += d
	c.mu.Unlock()
}

// SimulatedTime returns the accumulated processing time of all rounds:
// measured compute of the slowest machine per round plus modeled network
// time.
func (c *Cluster) SimulatedTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}

// NetworkTime returns only the modeled network component of SimulatedTime.
func (c *Cluster) NetworkTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.netTime
}

// Rounds returns how many synchronization rounds have completed.
func (c *Cluster) Rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// Traffic returns the total inter-machine bytes recorded so far.
func (c *Cluster) Traffic() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traffic
}

// ResetTime clears round, traffic and time accounting (memory registrations
// are kept). Engines call this between the load phase and the processing
// phase so that simulated time covers only processing.
func (c *Cluster) ResetTime() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds = 0
	c.netTime = 0
	c.simTime = 0
	c.traffic = 0
	for m := range c.egress {
		c.egress[m] = 0
	}
}
