package lint

import (
	"go/ast"
	"go/types"
)

// walkWithStack traverses root pre-order, calling visit(n, stack) where
// stack is the path of enclosing nodes from root down to n's parent.
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// objectFor resolves an identifier to its object, whether the identifier
// uses or defines it.
func (p *Pass) objectFor(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// isBuiltin reports whether fun names the given predeclared builtin.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.objectFor(id).(*types.Builtin)
	return ok
}

// isFuncNode reports whether n declares a function body.
func isFuncNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return true
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function on stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
