package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Marker is one //graphalint:<kind> [reason] comment. Markers are the audit
// trail of the lint suite: every suppression must name the invariant it
// waives and argue, in one line, why the waiver is sound.
type Marker struct {
	Kind   string
	Reason string
	Line   int
}

// markerPrefix introduces a graphalint directive comment. Like go:build
// directives, the comment must start exactly with //graphalint: (no space).
const markerPrefix = "//graphalint:"

// Marker kinds. All except MarkerNoAlloc suppress one analyzer and require
// a reason; MarkerNoAlloc is an opt-in annotation that turns the noalloc
// analyzer ON for the function it documents.
const (
	// MarkerOrderFree waives mapiter and floatsum on the statement (or
	// enclosing loop/function) it annotates: the author asserts the fold is
	// order-insensitive or its order is fixed independently of worker count.
	MarkerOrderFree = "orderfree"
	// MarkerWallClock waives the wallclock analyzer: the annotated call is
	// the clock seam's own default or otherwise outside simulated cost.
	MarkerWallClock = "wallclock"
	// MarkerCtxBG waives the context.Background/TODO ban: the annotated
	// call is a process root or a documented compatibility shim.
	MarkerCtxBG = "ctxbg"
	// MarkerAlloc waives one noalloc finding, e.g. a cold error path.
	MarkerAlloc = "alloc"
	// MarkerNoAlloc annotates a function as a steady-state zero-allocation
	// hot path; the noalloc analyzer checks every function carrying it.
	MarkerNoAlloc = "noalloc"
)

// markerNeedsReason says whether a marker kind is a suppression (and so
// must carry a justification). MarkerNoAlloc is an annotation, not a
// waiver; its reason is optional.
var markerNeedsReason = map[string]bool{
	MarkerOrderFree: true,
	MarkerWallClock: true,
	MarkerCtxBG:     true,
	MarkerAlloc:     true,
	MarkerNoAlloc:   false,
}

// collectMarkers indexes every graphalint directive in f by line.
func collectMarkers(fset *token.FileSet, f *ast.File) map[int]*Marker {
	markers := make(map[int]*Marker)
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, markerPrefix)
			if !ok {
				continue
			}
			kind, reason, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			markers[line] = &Marker{
				Kind:   strings.TrimSpace(kind),
				Reason: strings.TrimSpace(reason),
				Line:   line,
			}
		}
	}
	return markers
}

// markerAt returns the marker of the given kind that annotates line: either
// a trailing comment on the line itself or a comment on the line above.
func (p *Package) markerAt(file string, line int, kind string) *Marker {
	byLine := p.Markers[file]
	if byLine == nil {
		return nil
	}
	for _, l := range [2]int{line, line - 1} {
		if m := byLine[l]; m != nil && m.Kind == kind {
			return m
		}
	}
	return nil
}

// markerDiagnostics validates the directives themselves: unknown kinds and
// suppressions without a reason are findings, so a typo can never silently
// disable an analyzer.
func markerDiagnostics(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for file, byLine := range pkg.Markers {
		for _, m := range byLine {
			needs, known := markerNeedsReason[m.Kind]
			pos := token.Position{Filename: file, Line: m.Line, Column: 1}
			switch {
			case !known:
				diags = append(diags, Diagnostic{
					Analyzer: "marker",
					Pos:      pos,
					Message:  "unknown graphalint directive //graphalint:" + m.Kind,
				})
			case needs && m.Reason == "":
				diags = append(diags, Diagnostic{
					Analyzer: "marker",
					Pos:      pos,
					Message:  "//graphalint:" + m.Kind + " requires a one-line justification: //graphalint:" + m.Kind + " <reason>",
				})
			}
		}
	}
	return diags
}
