package lint

import "go/ast"

// WallClock forbids raw wall-clock reads — time.Now, time.Since,
// time.Until calls — in simulated-cost code. The cluster's rounds, the
// thread-pool discount, and the granula model must read their injected
// clock seam (a `now func() time.Time` field or package seam defaulting to
// time.Now) so tests and replays can substitute deterministic time.
// Referencing `time.Now` as a value to *install* it in a seam is allowed;
// only calls are findings. The service and CLI layers are outside the
// contract and keep using the wall clock freely.
var WallClock = &Analyzer{
	Name:   "wallclock",
	Doc:    "forbids raw time.Now/Since/Until calls in simulated-cost packages",
	Marker: MarkerWallClock,
	Run:    runWallClock,
}

func runWallClock(p *Pass) {
	if !p.Contracts.SimTime {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(p.Pkg.Info, call)
			for _, name := range [...]string{"Now", "Since", "Until"} {
				if isPkgFunc(obj, "time", name) {
					p.Report(call, "raw time.%s call in simulated-cost code: read the injected clock seam so simulated time stays deterministic under test clocks; waive with //graphalint:wallclock <reason>", name)
				}
			}
			return true
		})
	}
}
