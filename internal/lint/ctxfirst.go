package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the module's context discipline: an exported function
// or method that takes a context.Context must take it as its first
// parameter (every caller then threads cancellation the same way), and
// non-test library code under internal/ must never mint its own
// context.Background()/context.TODO() — the session and service layers
// own the root context and everything below them inherits the caller's.
// Deprecated compatibility shims and process roots carry
// `//graphalint:ctxbg <reason>`.
var CtxFirst = &Analyzer{
	Name:   "ctxfirst",
	Doc:    "context.Context first in exported signatures; no context.Background/TODO under internal/",
	Marker: MarkerCtxBG,
	Run:    runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			pos := 0
			for _, field := range fd.Type.Params.List {
				width := len(field.Names)
				if width == 0 {
					width = 1
				}
				if pos > 0 && isContextType(p.TypeOf(field.Type)) {
					p.Report(field, "%s: context.Context must be the first parameter", fd.Name.Name)
				}
				pos += width
			}
		}
		if p.Contracts.Internal {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeOf(p.Pkg.Info, call)
				for _, name := range [...]string{"Background", "TODO"} {
					if isPkgFunc(obj, "context", name) {
						p.Report(call, "context.%s in internal library code: thread the caller's ctx instead of minting a root; waive audited shims with //graphalint:ctxbg <reason>", name)
					}
				}
				return true
			})
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
