package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden-file harness: each testdata/src/<analyzer> package seeds
// deliberate violations, marked in the source with trailing
//
//	// want `regexp`
//
// comments. The named analyzer must report a matching diagnostic on
// exactly that line, and nothing anywhere else.

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// stdExports compiles (or pulls from the build cache) the export data of
// every stdlib package the testdata files import.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exportsMap, exportsErr = StdExports(".", "context", "sort", "time")
	})
	if exportsErr != nil {
		t.Fatalf("loading stdlib export data: %v", exportsErr)
	}
	return exportsMap
}

// expectation is one `// want` comment: a diagnostic that must be
// reported at file:line and match re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// collectWants scans the package sources for `// want` comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments under %s", dir)
	}
	return wants
}

// checkDiagnostics matches reported diagnostics against expectations:
// every want must be hit exactly once, and no diagnostic may be
// unexpected.
func checkDiagnostics(t *testing.T, wants []*expectation, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		s := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		hit := false
		for _, w := range wants {
			if w.matched || !sameFile(w.file, d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(s) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	return filepath.Base(a) == filepath.Base(b)
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// runGolden type-checks testdata/src/<name> and runs the analyzer of the
// same name over it with every contract forced on.
func runGolden(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := CheckDir(dir, stdExports(t))
	if err != nil {
		t.Fatal(err)
	}
	allOn := func(string) Contracts {
		return Contracts{Determinism: true, SimTime: true, Internal: true}
	}
	diags := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, name)}, allOn)
	checkDiagnostics(t, collectWants(t, dir), diags)
}

func TestMapIterGolden(t *testing.T)   { runGolden(t, "mapiter") }
func TestFloatSumGolden(t *testing.T)  { runGolden(t, "floatsum") }
func TestWallClockGolden(t *testing.T) { runGolden(t, "wallclock") }
func TestNoAllocGolden(t *testing.T)   { runGolden(t, "noalloc") }
func TestCtxFirstGolden(t *testing.T)  { runGolden(t, "ctxfirst") }

// TestMarkerValidation checks that malformed directives are findings.
// The expected lines are located by content so the fixture can move.
func TestMarkerValidation(t *testing.T) {
	dir := filepath.Join("testdata", "src", "marker")
	pkg, err := CheckDir(dir, stdExports(t))
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(dir, "marker.go"))
	if err != nil {
		t.Fatal(err)
	}
	typoLine, bareLine := 0, 0
	for i, line := range strings.Split(string(src), "\n") {
		switch strings.TrimSpace(line) {
		case "//graphalint:orderfree":
			bareLine = i + 1
		default:
			if strings.HasPrefix(strings.TrimSpace(line), "//graphalint:ordrfree") {
				typoLine = i + 1
			}
		}
	}
	if typoLine == 0 || bareLine == 0 {
		t.Fatalf("fixture lines not found (typo=%d bare=%d)", typoLine, bareLine)
	}

	diags := markerDiagnostics(pkg)
	if len(diags) != 2 {
		t.Fatalf("got %d marker diagnostics, want 2: %v", len(diags), diags)
	}
	byLine := map[int]Diagnostic{}
	for _, d := range diags {
		byLine[d.Pos.Line] = d
	}
	if d, ok := byLine[typoLine]; !ok || !strings.Contains(d.Message, "unknown graphalint directive") {
		t.Errorf("line %d: want unknown-directive finding, got %v", typoLine, d)
	}
	if d, ok := byLine[bareLine]; !ok || !strings.Contains(d.Message, "requires a one-line justification") {
		t.Errorf("line %d: want missing-reason finding, got %v", bareLine, d)
	}
}

// TestRepoClean runs the full suite over the whole module with the
// production contract mapping — the same invocation as
// `go run ./cmd/graphalint ./...` — and demands a clean tree.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All(), DefaultContracts)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
