package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map in determinism-contract packages. Map
// iteration order is randomized per run, so any loop whose effect depends
// on visit order silently breaks the bit-identical-at-any-worker-count
// contract. Three shapes are provably order-insensitive and pass without a
// waiver:
//
//   - key collection that is later sorted: `ks = append(ks, k)` followed,
//     in the same function, by a slices/sort/par.SortInt64s call on ks;
//   - a commutative integer accumulate into an indexed slot:
//     `counts[...]++` or `counts[...] += v` (also |=, &=, ^=, *=);
//   - a write to a distinct slot per key: `dst[k] = v` where k is the
//     range key and v does not read dst;
//   - a keyless `for range m` body, whose iterations are indistinguishable.
//
// Anything else needs `//graphalint:orderfree <reason>` on the loop.
var MapIter = &Analyzer{
	Name:   "mapiter",
	Doc:    "flags order-sensitive iteration over maps in determinism-contract packages",
	Marker: MarkerOrderFree,
	Run:    runMapIter,
}

func runMapIter(p *Pass) {
	if !p.Contracts.Determinism {
		return
	}
	for _, f := range p.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.TypeOf(rs.X)) {
				return
			}
			if orderInsensitive(p, rs, stack) {
				return
			}
			p.Report(rs, "range over map %s: iteration order is randomized; sort the keys first, fold into an indexed slot, or waive with //graphalint:orderfree <reason>",
				types.ExprString(rs.X))
		})
	}
}

// orderInsensitive recognizes the loop bodies whose result provably does
// not depend on map iteration order.
func orderInsensitive(p *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if rs.Key == nil {
		// for range m { ... }: no iteration identity, order irrelevant.
		return true
	}
	if len(rs.Body.List) == 0 {
		return true
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	switch s := rs.Body.List[0].(type) {
	case *ast.IncDecStmt:
		// counts[expr]++ — commutative integer accumulate.
		if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok && isInteger(p.TypeOf(ix)) {
			return true
		}
	case *ast.AssignStmt:
		return orderInsensitiveAssign(p, rs, s, stack)
	}
	return false
}

func orderInsensitiveAssign(p *Pass, rs *ast.RangeStmt, s *ast.AssignStmt, stack []ast.Node) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := ast.Unparen(s.Lhs[0]), ast.Unparen(s.Rhs[0])
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN, token.MUL_ASSIGN:
		// slot[expr] += v — commutative and associative only over integers;
		// float += reassociates, which floatsum exists to catch.
		ix, ok := lhs.(*ast.IndexExpr)
		return ok && isInteger(p.TypeOf(ix))
	case token.ASSIGN, token.DEFINE:
		// dst[k] = v where k is the range key: each iteration writes a
		// distinct slot, so order cannot matter unless v reads dst.
		if ix, ok := lhs.(*ast.IndexExpr); ok && s.Tok == token.ASSIGN {
			key, isKey := ast.Unparen(rs.Key).(*ast.Ident)
			idx, isIdx := ast.Unparen(ix.Index).(*ast.Ident)
			if isKey && isIdx && p.objectFor(key) != nil && p.objectFor(key) == p.objectFor(idx) {
				dst := rootIdent(ix.X)
				if dst != nil && !mentionsObject(p, rhs, p.objectFor(dst)) {
					return true
				}
			}
		}
		// ks = append(ks, k): key collection, provided ks is sorted later
		// in the same function before it can be consumed in map order.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") && len(call.Args) == 2 {
			dst, okDst := lhs.(*ast.Ident)
			src := rootIdent(call.Args[0])
			if okDst && src != nil && p.objectFor(dst) != nil && p.objectFor(dst) == p.objectFor(src) {
				if appendsRangeVar(p, rs, call.Args[1]) {
					return sortedLater(p, enclosingFuncBody(stack), rs.End(), p.objectFor(dst))
				}
			}
		}
	}
	return false
}

// appendsRangeVar reports whether e is exactly the loop's key or value
// variable — the collected elements then form a set that sorting
// canonicalizes.
func appendsRangeVar(p *Pass, rs *ast.RangeStmt, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || p.objectFor(id) == nil {
		return false
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if vid, ok := ast.Unparen(v).(*ast.Ident); ok && p.objectFor(vid) == p.objectFor(id) {
			return true
		}
	}
	return false
}

// sortedLater reports whether slice is passed to a sorting function after
// pos within body.
func sortedLater(p *Pass, body *ast.BlockStmt, pos token.Pos, slice types.Object) bool {
	if body == nil || slice == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(calleeOf(p.Pkg.Info, call)) {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && p.objectFor(root) == slice {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortCall recognizes the sorting entry points used in this repository.
func isSortCall(obj types.Object) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "slices":
		return strings.HasPrefix(f.Name(), "Sort")
	case "sort":
		return true
	case module + "/internal/par":
		return f.Name() == "SortInt64s"
	}
	return false
}

// mentionsObject reports whether obj is referenced anywhere inside e.
func mentionsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return true // unresolvable: be conservative
	}
	seen := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objectFor(id) == obj {
			seen = true
			return false
		}
		return !seen
	})
	return seen
}
