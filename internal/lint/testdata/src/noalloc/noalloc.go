// Package noalloc seeds violations and non-violations of the noalloc
// analyzer. Only functions annotated //graphalint:noalloc are checked.
package noalloc

type point struct{ x, y int }

// Hot is annotated as a steady-state zero-allocation path; the loop body
// commits most of the allocation sins the analyzer knows.
//
//graphalint:noalloc
func Hot(vals []int, dst []int) []int {
	total := ""
	for i, v := range vals {
		tmp := make([]int, 1) // want `noalloc: make in a loop body allocates each iteration`
		tmp[0] = v
		pt := point{x: i, y: v} // want `noalloc: composite literal in a loop body allocates each iteration`
		dst = append(dst, pt.x+tmp[0])
		spill := append(dst, v) // want `noalloc: append to a non-reused slice`
		_ = spill
		total += "x" // want `noalloc: string concatenation allocates`
	}
	_ = total
	return dst
}

// Index builds a map: maps always allocate, loop or not.
//
//graphalint:noalloc
func Index(keys []string) int {
	seen := map[string]int{} // want `noalloc: map literal allocates`
	return len(seen) + len(keys)
}

// Each builds a closure over a local: the captured variable escapes.
//
//graphalint:noalloc
func Each(vals []int, f func(int)) {
	acc := 0
	visit := func(v int) { acc += v } // want `noalloc: closure captures acc`
	for _, v := range vals {
		visit(v)
		f(v)
	}
	_ = acc
}

// Value boxes its result into the interface return slot.
//
//graphalint:noalloc
func Value(v int) any {
	return v // want `noalloc: returned value boxed into interface`
}

// Convert boxes through an explicit conversion.
//
//graphalint:noalloc
func Convert(v int) any {
	x := any(v) // want `noalloc: conversion boxes a concrete value into an interface`
	return x
}

// Print packs its argument into a variadic interface parameter.
//
//graphalint:noalloc
func Print(v int, log func(...any)) {
	log(v) // want `noalloc: argument boxed into interface parameter`
}

// ColdStart keeps its annotation but waives the one-time setup
// allocation with an audited reason.
//
//graphalint:noalloc
func ColdStart(n int) map[int]int {
	//graphalint:alloc job-setup path: runs once per upload, not per round
	idx := map[int]int{}
	for i := 0; i < n; i++ {
		idx[i] = i
	}
	return idx
}

// Cold is not annotated: the analyzer ignores it entirely.
func Cold(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, "x")
		m := map[int]int{i: i}
		_ = m
	}
	return out
}
