// Package marker seeds invalid graphalint directives: the framework
// reports them instead of letting a typo silently disable an analyzer.
package marker

// Typod carries an unknown directive kind.
//
//graphalint:ordrfree the kind is misspelled, so this is a finding
func Typod() {}

// Bare carries a suppression with no justification.
//
//graphalint:orderfree
func Bare() {}
