// Package ctxfirst seeds violations and non-violations of the ctxfirst
// analyzer.
package ctxfirst

import "context"

// Run buries the context behind another parameter.
func Run(name string, ctx context.Context) error { // want `ctxfirst: Run: context.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// Good threads the context first.
func Good(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// helper is unexported: the position rule covers only the package's API.
func helper(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

// Mint fabricates a root context inside library code.
func Mint() context.Context {
	return context.Background() // want `ctxfirst: context.Background in internal library code`
}

// Todo is no better.
func Todo() context.Context {
	return context.TODO() // want `ctxfirst: context.TODO in internal library code`
}

// Root is the audited process root.
func Root() context.Context {
	//graphalint:ctxbg test fixture: this package plays the process root
	return context.Background()
}

// use keeps the unexported helper referenced.
var use = helper
