// Package floatsum seeds violations and non-violations of the floatsum
// analyzer.
package floatsum

// Total accumulates a float across loop iterations: the association
// order would follow the chunk geometry.
func Total(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // want `floatsum: float accumulation sum`
	}
	return sum
}

// Residual subtracts across iterations — same hazard as addition.
func Residual(xs []float64, r float64) float64 {
	for _, x := range xs {
		r -= x // want `floatsum: float accumulation r`
	}
	return r
}

// Count accumulates integers: exact, commutative, always safe.
func Count(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Shift adds once, outside any loop: a single association.
func Shift(x, y float64) float64 {
	x += y
	return x
}

// BlockSum is the fixed-block interior of a SumBlocked-style reduction
// tree: sound because the caller sums blocks in block order, which only
// the function-level waiver can assert.
//
//graphalint:orderfree fixed [lo, hi) block interior, summed by the caller in block order
func BlockSum(xs []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += xs[i]
	}
	return s
}

// Dot carries the waiver on the loop itself.
func Dot(a, b []float64) float64 {
	var s float64
	//graphalint:orderfree sequential pass in index order, never chunked
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
