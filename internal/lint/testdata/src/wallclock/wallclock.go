// Package wallclock seeds violations and non-violations of the
// wallclock analyzer.
package wallclock

import "time"

// Cost reads the host clock directly: under a test clock the simulated
// cost would still move with wall time.
func Cost() time.Duration {
	start := time.Now()      // want `wallclock: raw time.Now call in simulated-cost code`
	return time.Since(start) // want `wallclock: raw time.Since call in simulated-cost code`
}

// Deadline computes a remaining budget from the host clock.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `wallclock: raw time.Until call in simulated-cost code`
}

// now is the injected seam: referencing time.Now as a value installs the
// default clock without calling it, which is exactly how the seam is
// built.
var now func() time.Time = time.Now

// Seam reads through the injected clock; the call goes to a variable,
// not to the time package.
func Seam() time.Time { return now() }

// Stamp is outside simulated cost and carries the audited waiver.
func Stamp() time.Time {
	//graphalint:wallclock report metadata timestamp, not simulated cost
	return time.Now()
}
