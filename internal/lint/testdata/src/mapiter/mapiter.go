// Package mapiter seeds violations and non-violations of the mapiter
// analyzer. Lines carrying a `// want` comment must be reported; every
// other line must stay silent.
package mapiter

import "sort"

// Mass folds map values in iteration order: float addition does not
// reassociate, so the result depends on the randomized visit order.
func Mass(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `mapiter: range over map m: iteration order is randomized`
		total = total + v
	}
	return total
}

// First returns whichever key the runtime happens to yield first.
func First(m map[int]int) int {
	for k := range m { // want `mapiter: range over map m`
		return k
	}
	return -1
}

// Count uses a keyless range: iterations are indistinguishable, so the
// order cannot matter.
func Count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Tally accumulates into indexed integer slots — commutative and exact.
func Tally(m map[int]int, counts []int) {
	for _, v := range m {
		counts[v]++
	}
}

// Invert writes one distinct slot per key: no two iterations touch the
// same storage.
func Invert(m map[int]int, dst []int) {
	for k, v := range m {
		dst[k] = v
	}
}

// Keys collects the key set and canonicalizes it with a sort before any
// consumer can observe map order.
func Keys(m map[int64]bool) []int64 {
	var ks []int64
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Max carries an audited waiver: max over values is order-independent,
// but the analyzer cannot prove it.
func Max(m map[string]int) int {
	best := 0
	//graphalint:orderfree max over the value set is order-independent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
