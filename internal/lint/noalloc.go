package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc checks every function annotated `//graphalint:noalloc` — the
// steady-state hot paths whose budgets the AllocsPerRun tests guard — for
// constructs that introduce per-call heap allocation:
//
//   - composite literals and make() inside a loop body (fresh storage
//     every iteration instead of pooled scratch);
//   - map literals anywhere (maps always allocate);
//   - append whose result is not reassigned to the slice it extends
//     (a non-reused slice defeats amortized pooled growth);
//   - string concatenation (builds a fresh string);
//   - function literals capturing locals (captured variables escape);
//   - concrete values boxed into interface-typed slots in assignments,
//     call arguments (including variadic ...interface{}), and returns.
//
// Cold paths inside an annotated function (error exits, first-call growth)
// carry `//graphalint:alloc <reason>` on the offending line. The analyzer
// is opt-in by annotation, so it runs regardless of package contracts.
var NoAlloc = &Analyzer{
	Name:   "noalloc",
	Doc:    "checks //graphalint:noalloc functions for allocation-introducing constructs",
	Marker: MarkerAlloc,
	Run:    runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocAnnotation(fd) {
				continue
			}
			checkNoAllocFunc(p, fd)
		}
	}
}

// hasNoAllocAnnotation reports whether the function's doc comment carries
// the //graphalint:noalloc directive.
func hasNoAllocAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, markerPrefix+MarkerNoAlloc) {
			return true
		}
	}
	return false
}

func checkNoAllocFunc(p *Pass, fd *ast.FuncDecl) {
	// funcs tracks nested function literals so return statements check
	// against the right result signature.
	type funcFrame struct {
		node ast.Node
		sig  *types.Signature
	}
	sig, _ := p.TypeOf(fd.Name).(*types.Signature)
	if sig == nil {
		if obj := p.objectFor(fd.Name); obj != nil {
			sig, _ = obj.Type().(*types.Signature)
		}
	}
	frames := []funcFrame{{node: fd, sig: sig}}
	loopDepth := 0

	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		// Maintain depth counters from the stack rather than push/pop
		// callbacks: recount is O(depth) and runs only per visited node.
		loopDepth = 0
		frames = frames[:1]
		for _, s := range stack {
			if isLoop(s) {
				loopDepth++
			}
			if fl, ok := s.(*ast.FuncLit); ok {
				fsig, _ := p.TypeOf(fl).(*types.Signature)
				frames = append(frames, funcFrame{node: fl, sig: fsig})
			}
		}

		switch n := n.(type) {
		case *ast.CompositeLit:
			if isMapType(p.TypeOf(n)) {
				p.Report(n, "map literal allocates; use a pooled dense structure (mplane.Histogram, indexed slices)")
			} else if loopDepth > 0 && !insideCompositeLit(stack) {
				p.Report(n, "composite literal in a loop body allocates each iteration; hoist it or reuse pooled scratch")
			}
		case *ast.CallExpr:
			checkNoAllocCall(p, n, stack, loopDepth)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p.TypeOf(n.Lhs[0])) {
				p.Report(n, "string concatenation allocates; format once outside the hot path")
			}
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && boxed(p, p.TypeOf(lhs), n.Rhs[i]) {
						p.Report(n.Rhs[i], "concrete value boxed into interface on assignment; keep hot-path values monomorphic")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.TypeOf(n)) && !isConstant(p, n) {
				p.Report(n, "string concatenation allocates; format once outside the hot path")
			}
		case *ast.FuncLit:
			for _, name := range capturedLocals(p, n, fd) {
				p.Report(n, "closure captures %s: captured variables escape to the heap; pass state as parameters or use a pooled struct", name)
			}
		case *ast.ReturnStmt:
			fsig := frames[len(frames)-1].sig
			if fsig == nil || fsig.Results() == nil || len(n.Results) != fsig.Results().Len() {
				return
			}
			for i, res := range n.Results {
				if boxed(p, fsig.Results().At(i).Type(), res) {
					p.Report(res, "returned value boxed into interface; return the concrete type from the hot path")
				}
			}
		}
	})
}

// checkNoAllocCall handles make, append discipline, variadic interface
// packing and per-argument interface boxing.
func checkNoAllocCall(p *Pass, call *ast.CallExpr, stack []ast.Node, loopDepth int) {
	if isBuiltin(p, call.Fun, "make") {
		if loopDepth > 0 {
			p.Report(call, "make in a loop body allocates each iteration; hoist it or reuse pooled scratch")
		}
		return
	}
	if isBuiltin(p, call.Fun, "append") {
		if len(call.Args) == 0 {
			return
		}
		base := types.ExprString(sliceBase(call.Args[0]))
		if as, ok := parentAssign(stack, call); ok && len(as.Lhs) == 1 {
			if types.ExprString(ast.Unparen(as.Lhs[0])) == base {
				return // s = append(s, ...) / s = append(s[:0], ...): pooled reuse
			}
		}
		p.Report(call, "append to a non-reused slice: reassign the result to the buffer it extends (s = append(s[:0], ...)) so pooled capacity is reused")
		return
	}

	// Conversions: T(x) where T is an interface boxes x.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxed(p, tv.Type, call.Args[0]) {
			p.Report(call, "conversion boxes a concrete value into an interface")
		}
		return
	}

	sig, _ := p.TypeOf(call.Fun).(*types.Signature)
	if sig == nil || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice: no packing here
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			target = slice.Elem()
		case i < params.Len():
			target = params.At(i).Type()
		default:
			continue
		}
		if boxed(p, target, arg) {
			p.Report(arg, "argument boxed into interface parameter; variadic interface calls also allocate the backing slice")
		}
	}
}

// boxed reports whether assigning e to a slot of type target heap-boxes a
// concrete value: target is an interface, e's type is concrete and not
// pointer-shaped (pointers, maps, channels and funcs fit in the interface
// word without allocating).
func boxed(p *Pass, target types.Type, e ast.Expr) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}

// capturedLocals returns the names of variables the function literal
// captures from its enclosing function (not package-level state).
func capturedLocals(p *Pass, fl *ast.FuncLit, encl *ast.FuncDecl) []string {
	pkgScope := p.Pkg.Types.Scope()
	seen := make(map[types.Object]bool)
	var names []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Parent() == pkgScope || obj.Parent() == types.Universe {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// this literal.
		if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
			return true
		}
		if obj.Pos() < encl.Pos() || obj.Pos() >= encl.End() {
			return true
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	return names
}

// insideCompositeLit reports whether the direct parent is itself a
// composite literal, so nested literals report once at the outermost one.
func insideCompositeLit(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	_, ok := stack[len(stack)-1].(*ast.CompositeLit)
	return ok
}

// parentAssign returns the assignment whose sole RHS is call, if any.
func parentAssign(stack []ast.Node, call *ast.CallExpr) (*ast.AssignStmt, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
		return nil, false
	}
	return as, true
}

// sliceBase strips slicing (s[:0], s[a:b]) to the reused buffer expression.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		se, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = se.X
	}
}

// isConstant reports whether e folded to a compile-time constant.
func isConstant(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
