// Package lint is the repository's static-analysis framework: a stdlib-only
// (go/ast, go/parser, go/types + `go list -json` metadata) analyzer suite
// that turns the benchmark's test-observed contracts — deterministic
// results at any worker count, zero-allocation steady states, simulated
// rather than wall-clock time, context-first APIs — into build-time
// guarantees. The cmd/graphalint driver runs the suite over ./... and CI
// fails on any finding.
//
// Escape hatches are audited, not silent: a //graphalint:<kind> <reason>
// comment on (or directly above) the offending line waives one analyzer and
// records why the waiver is sound. Directives with a typo'd kind or a
// missing reason are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Marker is the directive kind that suppresses this analyzer's
	// findings ("" if the analyzer has no escape hatch).
	Marker string
	Run    func(*Pass)
}

// Contracts selects which invariants a package has signed up for. The
// repo-wide mapping lives in DefaultContracts; the golden-file harness
// forces all contracts on for its testdata packages.
type Contracts struct {
	// Determinism: results must be bit-identical at any worker count
	// (mapiter, floatsum).
	Determinism bool
	// SimTime: the package computes simulated cost and must use the
	// injected clock seam, never raw wall-clock reads (wallclock).
	SimTime bool
	// Internal: non-test library code that must thread the caller's
	// context instead of minting context.Background/TODO (ctxfirst).
	Internal bool
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg       *Package
	Contracts Contracts
	analyzer  *Analyzer
	sink      *[]Diagnostic
}

// Report emits a finding anchored at n unless a matching suppression
// directive annotates n's line (or the line above).
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	if p.Marked(n) {
		return
	}
	pos := p.Pkg.Fset.Position(n.Pos())
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Marked reports whether the analyzer's suppression directive annotates
// n's first line or the line above it. Analyzers that honor loop- or
// function-level waivers call it on each enclosing node.
func (p *Pass) Marked(n ast.Node) bool {
	if p.analyzer.Marker == "" || n == nil {
		return false
	}
	pos := p.Pkg.Fset.Position(n.Pos())
	return p.Pkg.markerAt(pos.Filename, pos.Line, p.analyzer.Marker) != nil
}

// TypeOf returns the type of e, or nil if the expression was not typed.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter,
		FloatSum,
		WallClock,
		NoAlloc,
		CtxFirst,
	}
}

// Run applies the analyzers to every package and returns the findings
// sorted by position. The framework also validates the suppression
// directives themselves (see markerDiagnostics).
func Run(pkgs []*Package, analyzers []*Analyzer, contractsFor func(importPath string) Contracts) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, markerDiagnostics(pkg)...)
		c := contractsFor(pkg.ImportPath)
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, Contracts: c, analyzer: a, sink: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// calleeOf resolves the object a call expression invokes: a plain function,
// a method, or a qualified package function. It returns nil for builtins,
// conversions, and calls through function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t is an integer basic type.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isString reports whether t is a string basic type.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isLoop reports whether n is a for or range statement.
func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// rootIdent walks to the base identifier of expressions like x, x.f[i],
// x[i].f, (*x).f — the variable whose storage the expression addresses.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
