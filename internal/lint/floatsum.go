package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags cross-iteration floating-point accumulation (`+=` / `-=`
// into a variable that outlives the loop) in determinism-contract
// packages. Floating-point addition does not reassociate, so any sum whose
// association order can vary with the worker count — per-chunk partials,
// chunk-geometry-dependent ranges, map-ordered folds — breaks the
// bit-identical contract. par.SumBlocked (fixed reduction tree) and an
// ordered fold over par.Accumulate's chunk-indexed results are the
// sanctioned replacements.
//
// Folds whose order is fixed independently of the worker count (a
// sequential pass over CSR adjacency, the fixed-block interior of
// SumBlocked itself) are sound but not machine-provable; they carry
// `//graphalint:orderfree <reason>` on the statement, the enclosing loop,
// or the enclosing function as the audited proof.
var FloatSum = &Analyzer{
	Name:   "floatsum",
	Doc:    "flags cross-iteration float accumulation in determinism-contract packages",
	Marker: MarkerOrderFree,
	Run:    runFloatSum,
}

func runFloatSum(p *Pass) {
	if !p.Contracts.Determinism {
		return
	}
	for _, f := range p.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				return
			}
			if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN {
				return
			}
			if !isFloat(p.TypeOf(as.Lhs[0])) {
				return
			}
			loop := innermostLoop(stack)
			if loop == nil {
				return // not in a loop: no cross-iteration accumulation
			}
			if declaredWithin(p, as.Lhs[0], loopBody(loop)) {
				return // per-iteration local, reset every pass
			}
			// A waiver may sit on the statement, any enclosing loop, or
			// the enclosing function declaration.
			for i := len(stack) - 1; i >= 0; i-- {
				if (isLoop(stack[i]) || isFuncNode(stack[i])) && p.Marked(stack[i]) {
					return
				}
			}
			p.Report(as, "float accumulation %s %s across loop iterations: association order must not depend on the worker count; use par.SumBlocked or an ordered fold over par.Accumulate, or waive with //graphalint:orderfree <reason>",
				types.ExprString(as.Lhs[0]), as.Tok)
		})
	}
}

// declaredWithin reports whether the storage e accumulates into is declared
// inside block (and so cannot carry a value across iterations of the loop
// whose body block is).
func declaredWithin(p *Pass, e ast.Expr, block *ast.BlockStmt) bool {
	if block == nil {
		return false
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := p.objectFor(root)
	if obj == nil {
		return false
	}
	return block.Pos() <= obj.Pos() && obj.Pos() < block.End()
}

// innermostLoop returns the deepest for/range statement on the stack.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if isLoop(stack[i]) {
			return stack[i]
		}
	}
	return nil
}
