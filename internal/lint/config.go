package lint

import "strings"

// module is the import-path root of this repository.
const module = "graphalytics"

// determinismPkgs carry the bit-identical-at-any-worker-count contract
// (see internal/par's package comment): the parallel runtime itself, the
// reference kernels and their shared step bodies, the zero-alloc message
// plane, the CSR builder, and every engine under internal/platforms. A
// trailing "/" marks a prefix that covers all subpackages.
var determinismPkgs = []string{
	module + "/internal/par",
	module + "/internal/mplane",
	module + "/internal/algorithms",
	module + "/internal/graph",
	module + "/internal/platforms",
	module + "/internal/platforms/",
}

// simTimePkgs compute simulated cost: machine rounds, thread discounts and
// the granula model must read the injected clock seam so replays and tests
// can substitute deterministic time. The engines run inside RunRound's
// measured window and must never consult the wall clock themselves.
var simTimePkgs = []string{
	module + "/internal/cluster",
	module + "/internal/granula",
	module + "/internal/platforms",
	module + "/internal/platforms/",
}

// DefaultContracts maps an import path to the contracts it must uphold.
// This is the repository's single source of truth for which package obeys
// which invariant; extend it when a new contract-bearing package appears.
func DefaultContracts(importPath string) Contracts {
	return Contracts{
		Determinism: matchesAny(importPath, determinismPkgs),
		SimTime:     matchesAny(importPath, simTimePkgs),
		Internal:    strings.HasPrefix(importPath, module+"/internal/"),
	}
}

func matchesAny(importPath string, pkgs []string) bool {
	for _, p := range pkgs {
		if importPath == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(importPath, p)) {
			return true
		}
	}
	return false
}
