package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Markers indexes every //graphalint:<kind> comment by file name and
	// line, the audit trail the analyzers consult before reporting.
	Markers map[string]map[int]*Marker
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// goList streams `go list -e -deps -export -json patterns...` run in dir.
// -deps pulls in every dependency's compiled export data, which is how the
// type checker resolves imports without any third-party loader.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// reported, special-casing unsafe. It implements types.Importer on top of
// the stdlib gc importer.
type exportImporter struct {
	base types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{base: importer.ForCompiler(fset, "gc", lookup)}
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return imp.base.Import(path)
}

// Load lists patterns with the go tool (run in dir), parses every non-test
// Go file of each matched package, and type-checks them against the export
// data of their dependencies. Test files and testdata directories are
// excluded by the go tool itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var broken []string
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			broken = append(broken, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
		}
	}
	if len(broken) > 0 {
		return nil, fmt.Errorf("go list reported broken packages:\n  %s", strings.Join(broken, "\n  "))
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// CheckDir parses and type-checks every .go file directly inside dir as a
// single package whose imports resolve through exports (an import path →
// export file map, see StdExports). The golden-file harness uses it to load
// testdata packages that the go tool deliberately ignores.
func CheckDir(dir string, exports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	return check(fset, imp, filepath.Base(dir), dir, files)
}

// StdExports returns the import path → export data file map for the given
// stdlib packages and their dependencies, compiled on demand by the go tool.
func StdExports(dir string, stdPkgs ...string) (map[string]string, error) {
	listed, err := goList(dir, stdPkgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Markers:    make(map[string]map[int]*Marker),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Markers[fset.Position(f.Pos()).Filename] = collectMarkers(fset, f)
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
