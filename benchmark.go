package graphalytics

import (
	"context"
	"time"

	"graphalytics/internal/cluster"
	"graphalytics/internal/core"
	"graphalytics/internal/datagen"
	"graphalytics/internal/graph500"
	"graphalytics/internal/metrics"
	"graphalytics/internal/platforms"
	"graphalytics/internal/workload"
)

// Session is the harness's context-first orchestrator: it runs benchmark
// jobs with SLA enforcement, single-flighted reference validation, a
// results database, a bounded-parallelism scheduler (RunAll) and a
// streaming progress Observer. Construct one with NewSession and
// functional options; see DESIGN.md for the full API and the migration
// guide from the deprecated Runner.
type Session = core.Session

// Option configures a Session (or one RunAll batch).
type Option = core.Option

// ExperimentConfig parameterizes the experiment suites run through a
// Session (platform sets, resource axes, experiment-specific knobs).
type ExperimentConfig = core.ExperimentConfig

// NewSession returns a session with validation on, the default network
// model, a fresh results database and GOMAXPROCS parallelism, overridden
// by the given options.
func NewSession(opts ...Option) *Session { return core.NewSession(opts...) }

// Functional options for NewSession and Session.RunAll.
func WithSLA(d time.Duration) Option            { return core.WithSLA(d) }
func WithValidation(on bool) Option             { return core.WithValidation(on) }
func WithNetwork(n cluster.NetworkModel) Option { return core.WithNetwork(n) }
func WithResultsDB(db *core.ResultsDB) Option   { return core.WithResultsDB(db) }
func WithParallelism(n int) Option              { return core.WithParallelism(n) }
func WithReferenceParallelism(n int) Option     { return core.WithReferenceParallelism(n) }
func WithObserver(o Observer) Option            { return core.WithObserver(o) }

// NetworkModel is the interconnect model distributed jobs are charged
// against; DefaultNetwork approximates the paper's testbed baseline.
type NetworkModel = cluster.NetworkModel

// DefaultNetwork returns the paper-testbed interconnect model.
func DefaultNetwork() NetworkModel { return cluster.DefaultNetwork() }

// Observer receives a session's streaming progress events; Event and
// EventType describe the stream. The session serializes Observe calls,
// stamps every event with a gap-free per-session sequence number and
// timestamp, and recovers observer panics (see core.Observer for the
// full delivery contract).
type (
	Observer     = core.Observer
	ObserverFunc = core.ObserverFunc
	Event        = core.Event
	EventType    = core.EventType
)

// BufferedObserver decouples a slow event consumer from the session's
// synchronous delivery: events are forwarded in order through a bounded
// buffer and dropped (counted, never blocking the run) on overflow.
type BufferedObserver = core.BufferedObserver

// NewBufferedObserver wraps target with a drop-on-overflow buffer.
func NewBufferedObserver(target Observer, size int) *BufferedObserver {
	return core.NewBufferedObserver(target, size)
}

// MultiObserver fans one event stream out to several observers.
func MultiObserver(obs ...Observer) Observer { return core.MultiObserver(obs...) }

// The event stream: per-job start/finish, per-experiment phase,
// per-dataset materialization and per-deployment upload events.
const (
	EventJobStarted          = core.EventJobStarted
	EventJobFinished         = core.EventJobFinished
	EventExperimentStarted   = core.EventExperimentStarted
	EventExperimentFinished  = core.EventExperimentFinished
	EventDatasetMaterialized = core.EventDatasetMaterialized
	EventDeploymentUploaded  = core.EventDeploymentUploaded
)

// Runner executes benchmark jobs with SLA enforcement, validation and a
// results database.
//
// Deprecated: use Session via NewSession; Runner remains as a shim for
// one release. Runner.Session converts existing code incrementally.
type Runner = core.Runner

// JobSpec is one benchmark job; JobResult one results-database record.
type (
	JobSpec   = core.JobSpec
	JobResult = core.JobResult
)

// Report is a rendered experiment outcome (one paper figure or table).
type Report = core.Report

// ResultsDB is the harness's results database.
type ResultsDB = core.ResultsDB

// Description is a declarative benchmark description: the job matrix the
// harness expands and schedules (component 1 of Figure 1).
type Description = core.Description

// Status classifies the outcome of a job; it is terminal for every
// defined value (Status.Terminal) and renders via Status.String.
type Status = core.Status

// Job statuses.
const (
	StatusOK          = core.StatusOK
	StatusSLABreak    = core.StatusSLABreak
	StatusOOM         = core.StatusOOM
	StatusFailed      = core.StatusFailed
	StatusUnsupported = core.StatusUnsupported
	StatusInvalid     = core.StatusInvalid
	StatusCanceled    = core.StatusCanceled
)

// NewRunner returns a validating benchmark runner with the default
// network model and a fresh results database.
//
// Deprecated: use NewSession.
func NewRunner() *Runner { return core.NewRunner() }

// Dataset is one workload catalog entry.
type Dataset = workload.Dataset

// Datasets returns the full workload catalog (Tables 3 and 4 of the paper
// at reproduction scale).
func Datasets() []Dataset { return workload.Catalog() }

// LoadDataset generates (or returns the cached) graph of a catalog entry.
func LoadDataset(id string) (*Graph, error) { return workload.Load(id) }

// DatasetClass returns the T-shirt class of a graph on the reproduction's
// shifted scale.
func DatasetClass(g *Graph) string { return string(workload.Class(g)) }

// GraphScale returns s(V,E) = log10(|V|+|E|), rounded to one decimal.
func GraphScale(g *Graph) float64 { return metrics.Scale(g.NumVertices(), g.NumEdges()) }

// SingleMachinePlatforms lists the engines used in single-machine
// experiments; DistributedPlatforms those used in distributed ones.
func SingleMachinePlatforms() []string { return append([]string(nil), platforms.SingleMachine...) }

// DistributedPlatforms lists the engines used in distributed experiments.
func DistributedPlatforms() []string { return append([]string(nil), platforms.DistributedSet...) }

// Experiment entry points: each regenerates one paper artifact. The
// canonical API is the context-first Session methods (s.DatasetVariety,
// s.AlgorithmVariety, ...); see DESIGN.md's per-experiment index for the
// artifact mapping. The positional wrappers below are deprecated shims.

// DatasetVariety runs Figure 4 (Tproc of BFS and PR across datasets).
//
// Deprecated: use Session.DatasetVariety.
func DatasetVariety(r *Runner, platformNames []string, threads int) (*Report, error) {
	return core.DatasetVariety(r, platformNames, threads)
}

// ThroughputReport derives Figure 5 (EPS/EVPS) from dataset-variety runs.
func ThroughputReport(db *ResultsDB, platformNames []string) *Report {
	return core.ThroughputReport(db, platformNames)
}

// AlgorithmVariety runs Figure 6 (all algorithms on R4 and D300).
//
// Deprecated: use Session.AlgorithmVariety.
func AlgorithmVariety(r *Runner, platformNames []string, threads int) (*Report, error) {
	return core.AlgorithmVariety(r, platformNames, threads)
}

// VerticalScalability runs Figure 7 (Tproc vs. threads).
//
// Deprecated: use Session.VerticalScalability.
func VerticalScalability(r *Runner, platformNames []string, threadSweep []int) (*Report, error) {
	return core.VerticalScalability(r, platformNames, threadSweep)
}

// VerticalSpeedupReport derives Table 9 from vertical-scalability runs.
func VerticalSpeedupReport(db *ResultsDB, platformNames []string) *Report {
	return core.VerticalSpeedupReport(db, platformNames)
}

// StrongScaling runs Figure 8 (Tproc vs. machines on D1000).
//
// Deprecated: use Session.StrongScaling.
func StrongScaling(r *Runner, platformNames []string, machineSweep []int, threads int) (*Report, error) {
	return core.StrongScaling(r, platformNames, machineSweep, threads)
}

// WeakPair couples a machine count with its Graph500 dataset.
type WeakPair = core.WeakPair

// DefaultWeakPairs mirrors the paper's weak-scaling series.
func DefaultWeakPairs() []WeakPair { return core.DefaultWeakPairs() }

// WeakScaling runs Figure 9 (constant per-machine work).
//
// Deprecated: use Session.WeakScaling.
func WeakScaling(r *Runner, platformNames []string, pairs []WeakPair, threads int) (*Report, error) {
	return core.WeakScaling(r, platformNames, pairs, threads)
}

// StressTest runs Table 10 (smallest failing dataset per platform under a
// memory budget).
//
// Deprecated: use Session.StressTest.
func StressTest(r *Runner, platformNames []string, threads int, memoryBudget int64) (*Report, error) {
	return core.StressTest(r, platformNames, threads, memoryBudget)
}

// Variability runs Table 11 (mean Tproc and coefficient of variation).
//
// Deprecated: use Session.Variability.
func Variability(r *Runner, singleMachine, distributed []string, n, threads int) (*Report, error) {
	return core.Variability(r, singleMachine, distributed, n, threads)
}

// MakespanBreakdown runs Table 8 (Tproc vs. makespan).
//
// Deprecated: use Session.MakespanBreakdown.
func MakespanBreakdown(r *Runner, platformNames []string, threads int) (*Report, error) {
	return core.MakespanBreakdown(r, platformNames, threads)
}

// DataGeneration runs Figure 10 (Datagen old vs. new flow and worker
// scalability).
func DataGeneration(scaleFactors []float64, workers []int, edgesPerUnit int) (*Report, error) {
	return core.DataGeneration(scaleFactors, workers, edgesPerUnit)
}

// Generator facades.

// DatagenConfig parameterizes the social-network generator.
type DatagenConfig = datagen.Config

// DatagenResult is a generated social network with generation statistics.
type DatagenResult = datagen.Result

// Datagen flows (Figure 10 compares them).
const (
	DatagenFlowNew = datagen.FlowNew
	DatagenFlowOld = datagen.FlowOld
)

// GenerateSocialNetwork runs the LDBC Datagen reimplementation.
func GenerateSocialNetwork(cfg DatagenConfig) (*DatagenResult, error) { return datagen.Generate(cfg) }

// Graph500Config parameterizes the Kronecker generator.
type Graph500Config = graph500.Config

// GenerateGraph500 runs the Graph500 R-MAT generator.
func GenerateGraph500(cfg Graph500Config) (*Graph, error) { return graph500.Generate(cfg) }

// RenewClassL re-derives the benchmark's reference class: the largest
// class whose graphs all complete BFS within the budget on the given
// single-machine platform (the renewal process of Section 2.4).
func RenewClassL(platformName string, threads int, budget time.Duration) (string, error) {
	timer := func(g *Graph, source int64) (time.Duration, error) {
		res, err := RunWithBudget(context.Background(), platformName, g, BFS, Params{Source: source},
			RunConfig{Threads: threads, Machines: 1}, budget*10)
		if err != nil {
			return 0, err
		}
		return res.ProcessingTime, nil
	}
	out, err := workload.RenewClassL(timer, budget)
	if err != nil {
		return "", err
	}
	return string(out.ClassL), nil
}
