package graphalytics_test

import (
	"context"
	"testing"
	"time"

	"graphalytics"
)

func toyGraph(t *testing.T) *graphalytics.Graph {
	t.Helper()
	g, err := graphalytics.FromEdges("toy", false, true, []graphalytics.Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 2},
		{Src: 3, Dst: 1, Weight: 3},
		{Src: 3, Dst: 4, Weight: 1},
	}, graphalytics.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeRunAllPlatformsAgree(t *testing.T) {
	g := toyGraph(t)
	params := graphalytics.Params{Source: 1, Iterations: 5}
	for _, a := range graphalytics.Algorithms {
		want, err := graphalytics.Reference(g, a, params)
		if err != nil {
			t.Fatalf("%s reference: %v", a, err)
		}
		for _, name := range graphalytics.Platforms() {
			p, err := graphalytics.PlatformByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Supports(a) {
				continue
			}
			res, err := graphalytics.Run(context.Background(), name, g, a, params,
				graphalytics.RunConfig{Threads: 2})
			if err != nil {
				t.Fatalf("%s on %s: %v", a, name, err)
			}
			if rep := graphalytics.Validate(res.Output, want, g); !rep.OK {
				t.Fatalf("%s on %s: %v", a, name, rep.Error())
			}
		}
	}
}

func TestFacadeRunUnknownPlatform(t *testing.T) {
	g := toyGraph(t)
	if _, err := graphalytics.Run(context.Background(), "bogus", g, graphalytics.BFS,
		graphalytics.Params{Source: 1}, graphalytics.RunConfig{}); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestFacadeRunWithTimeout(t *testing.T) {
	g := toyGraph(t)
	res, err := graphalytics.RunWithTimeout("native", g, graphalytics.BFS,
		graphalytics.Params{Source: 1}, graphalytics.RunConfig{Threads: 1}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcessingTime <= 0 {
		t.Fatal("expected positive processing time")
	}
}

func TestFacadePaperNames(t *testing.T) {
	want := map[string]string{
		"pregel":   "Giraph",
		"dataflow": "GraphX",
		"gas":      "PowerGraph",
		"spmv-s":   "GraphMat(S)",
		"spmv-d":   "GraphMat(D)",
		"native":   "OpenG",
		"pushpull": "PGX.D",
	}
	for engine, paper := range want {
		if got := graphalytics.PaperName(engine); got != paper {
			t.Errorf("PaperName(%s) = %s, want %s", engine, got, paper)
		}
	}
	if graphalytics.PaperName("unknown") != "unknown" {
		t.Error("unknown engines map to themselves")
	}
}

func TestFacadePlatformSets(t *testing.T) {
	if len(graphalytics.Platforms()) != 7 {
		t.Fatalf("registered platforms = %v, want 7", graphalytics.Platforms())
	}
	if len(graphalytics.SingleMachinePlatforms()) != 6 {
		t.Fatalf("single-machine set = %v, want 6", graphalytics.SingleMachinePlatforms())
	}
	if len(graphalytics.DistributedPlatforms()) != 5 {
		t.Fatalf("distributed set = %v, want 5", graphalytics.DistributedPlatforms())
	}
}

func TestFacadeDatasets(t *testing.T) {
	ds := graphalytics.Datasets()
	if len(ds) != 16 {
		t.Fatalf("catalog has %d datasets, want 16 (6 real + 10 synthetic)", len(ds))
	}
	g, err := graphalytics.LoadDataset("R1")
	if err != nil {
		t.Fatal(err)
	}
	if graphalytics.GraphScale(g) <= 0 || graphalytics.DatasetClass(g) == "" {
		t.Fatal("scale and class must be derivable")
	}
}

func TestFacadeGenerators(t *testing.T) {
	res, err := graphalytics.GenerateSocialNetwork(graphalytics.DatagenConfig{ScaleFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() == 0 {
		t.Fatal("datagen produced no edges")
	}
	g, err := graphalytics.GenerateGraph500(graphalytics.Graph500Config{Scale: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 64 {
		t.Fatalf("graph500 |V| = %d, want 64", g.NumVertices())
	}
}

func TestFacadeSaveLoadGraph(t *testing.T) {
	g := toyGraph(t)
	dir := t.TempDir()
	if err := graphalytics.SaveGraph(g, dir+"/g.v", dir+"/g.e"); err != nil {
		t.Fatal(err)
	}
	back, err := graphalytics.LoadGraph(dir+"/g.v", dir+"/g.e", false, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("graph changed across save/load")
	}
}

func TestFacadeSessionRunAll(t *testing.T) {
	var finished int
	s := graphalytics.NewSession(
		graphalytics.WithSLA(2*time.Minute),
		graphalytics.WithParallelism(4),
		graphalytics.WithObserver(graphalytics.ObserverFunc(func(e graphalytics.Event) {
			if e.Type == graphalytics.EventJobFinished {
				finished++ // Observe calls are serialized by the session
			}
		})),
	)
	specs := []graphalytics.JobSpec{
		{Platform: "native", Dataset: "R1", Algorithm: graphalytics.BFS, Threads: 2, Machines: 1},
		{Platform: "spmv-s", Dataset: "R1", Algorithm: graphalytics.PR, Threads: 2, Machines: 1},
		{Platform: "native", Dataset: "R2", Algorithm: graphalytics.WCC, Threads: 2, Machines: 1},
	}
	results, err := s.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Spec != specs[i] {
			t.Fatalf("result %d out of order", i)
		}
		if res.Status != graphalytics.StatusOK {
			t.Fatalf("result %d: status %s (%s)", i, res.Status, res.Error)
		}
		if !res.Status.Terminal() {
			t.Fatalf("result %d: non-terminal status", i)
		}
	}
	if finished != len(specs) {
		t.Fatalf("observer saw %d finished jobs, want %d", finished, len(specs))
	}
	if s.DB().Len() != len(specs) {
		t.Fatalf("results DB has %d records, want %d", s.DB().Len(), len(specs))
	}
}

func TestFacadeStatusExports(t *testing.T) {
	// StatusInvalid and StatusCanceled are part of the facade surface; a
	// compile-time check plus the Terminal/String helpers.
	for _, s := range []graphalytics.Status{graphalytics.StatusInvalid, graphalytics.StatusCanceled} {
		if !s.Terminal() || s.String() == "" {
			t.Errorf("status %q: Terminal=%v String=%q", s, s.Terminal(), s.String())
		}
	}
}

func TestFacadeRenewal(t *testing.T) {
	class, err := graphalytics.RenewClassL("native", 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if class != "XL" {
		t.Fatalf("with a generous budget class L should re-derive to XL, got %s", class)
	}
}

func TestFacadeGraphStoreAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	st := graphalytics.NewGraphStore(graphalytics.GraphStoreOptions{Dir: dir})
	g, err := graphalytics.LoadDatasetFrom(st, "R1")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same dir loads the snapshot; the facade's
	// snapshot helpers read the same file format.
	st2 := graphalytics.NewGraphStore(graphalytics.GraphStoreOptions{Dir: dir})
	g2, err := graphalytics.LoadDatasetFrom(st2, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("snapshot round trip changed the dataset")
	}
	path := dir + "/manual.gsnap"
	if err := graphalytics.SaveGraphSnapshot(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := graphalytics.LoadGraphSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("manual snapshot changed the graph")
	}
}

func TestFacadeWarmCatalogAndCacheDirSession(t *testing.T) {
	dir := t.TempDir()
	st := graphalytics.NewGraphStore(graphalytics.GraphStoreOptions{Dir: dir})
	if err := graphalytics.WarmCatalog(context.Background(), st, 4, nil); err != nil {
		t.Fatal(err)
	}
	// A session over the warmed cache dir must not generate anything.
	var badSources []string
	s := graphalytics.NewSession(
		graphalytics.WithCacheDir(dir),
		graphalytics.WithObserver(graphalytics.ObserverFunc(func(e graphalytics.Event) {
			if e.Type == graphalytics.EventDatasetMaterialized && e.Source == string(graphalytics.SourceBuilt) {
				badSources = append(badSources, e.Dataset)
			}
		})),
	)
	res, err := s.RunJob(context.Background(), graphalytics.JobSpec{
		Platform: "native", Dataset: "D300", Algorithm: graphalytics.BFS, Threads: 2, Machines: 1,
	})
	if err != nil || res.Status != graphalytics.StatusOK {
		t.Fatalf("status=%v err=%v", res.Status, err)
	}
	if len(badSources) > 0 {
		t.Fatalf("warmed session regenerated %v", badSources)
	}
}
