//go:build linux

package graphalytics_test

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/graph"
	"graphalytics/internal/graph500"
)

// The out-of-core claim, end to end: a Graph500 scale-20 graph — whose
// raw edge list alone is ~400 MB — builds through the spill-to-disk
// BuildTo and runs BFS from an mmap'd snapshot under a heap limit far
// below the edge-list size. Gated behind GRAPHALYTICS_OOC=1 because it
// generates ~17M edges and external-sorts ~1 GB of arc records; CI runs
// it in a dedicated GOMEMLIMIT-capped job.
func TestOutOfCoreGraph500Scale20(t *testing.T) {
	if os.Getenv("GRAPHALYTICS_OOC") != "1" {
		t.Skip("set GRAPHALYTICS_OOC=1 to run the out-of-core proof")
	}
	const (
		scale        = 20
		edgeFactor   = 16
		numEdges     = edgeFactor << scale  // 16.7M generated edges
		rawEdgeBytes = int64(numEdges) * 24 // []graph.Edge footprint the heap never pays
		heapCap      = int64(256) << 20     // well below rawEdgeBytes (~403 MB)
	)
	if os.Getenv("GOMEMLIMIT") == "" {
		// The CI job caps the whole process via GOMEMLIMIT; standalone runs
		// get the same cap here so the proof holds locally too.
		prev := debug.SetMemoryLimit(heapCap)
		defer debug.SetMemoryLimit(prev)
	}

	b := graph.NewBuilder(false, false)
	b.SetSpill(graph.SpillOptions{Dir: t.TempDir(), BudgetBytes: 64 << 20})
	if err := graph500.Into(graph500.Config{Scale: scale, Seed: scale}, b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g500-20.snap")
	if err := b.BuildTo(path); err != nil {
		t.Fatal(err)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if int64(ms.HeapAlloc) >= rawEdgeBytes {
		t.Fatalf("heap after BuildTo = %d MiB, not below the raw edge list (%d MiB): the build was not out-of-core",
			ms.HeapAlloc>>20, rawEdgeBytes>>20)
	}
	t.Logf("built scale-%d snapshot with HeapAlloc=%d MiB (edge list would be %d MiB)",
		scale, ms.HeapAlloc>>20, rawEdgeBytes>>20)

	g, err := graph.MapSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumVertices() != 1<<scale {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), 1<<scale)
	}
	// BFS from the highest-degree hub: Graph500's random relabeling makes
	// any fixed ID a random — frequently isolated — R-MAT vertex, while
	// the hub anchors the giant component. The degree scan walks the
	// mapped offset array, touching every CSR page through the mapping.
	hub, hubDeg := int32(0), 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := len(g.OutNeighbors(v)); d > hubDeg {
			hub, hubDeg = v, d
		}
	}
	out, err := algorithms.RunReference(g, algorithms.BFS, algorithms.Params{Source: g.VertexID(hub)})
	if err != nil {
		t.Fatal(err)
	}
	reached := 0
	for _, d := range out.Int {
		if d != algorithms.Unreachable {
			reached++
		}
	}
	// The R-MAT giant component spans well over half the non-isolated
	// vertices (empirically ~70% of all vertices at these scales).
	if reached < g.NumVertices()/4 {
		t.Fatalf("BFS reached %d of %d vertices; mapped graph looks wrong", reached, g.NumVertices())
	}
	runtime.ReadMemStats(&ms)
	if int64(ms.HeapAlloc) >= rawEdgeBytes {
		t.Fatalf("heap after BFS = %d MiB, not below the raw edge list (%d MiB)",
			ms.HeapAlloc>>20, rawEdgeBytes>>20)
	}
	t.Logf("BFS reached %d/%d vertices with HeapAlloc=%d MiB", reached, g.NumVertices(), ms.HeapAlloc>>20)
}
