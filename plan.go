package graphalytics

import (
	"io"

	"graphalytics/internal/core"
)

// This file is the facade of the Spec → Plan → Run pipeline: declare a
// BenchSpec (what to run, on what, with which resources, how often, under
// which SLA and validation policy), compile it into an explicit Plan —
// an ordered job list grouped into deployments by (platform, dataset,
// config) — and execute it with Session.RunPlan, which holds one uploaded
// graph per deployment group so an N-algorithm sweep pays one upload
// instead of N. Results stream to pluggable sinks in plan order.
//
//	spec := graphalytics.BenchSpec{
//	    Name:       "sweep",
//	    Platforms:  []string{"native"},
//	    Datasets:   graphalytics.DatasetSelector{IDs: []string{"D300"}},
//	    Algorithms: []graphalytics.Algorithm{graphalytics.BFS, graphalytics.PR},
//	    Configs:    []graphalytics.ResourceSpec{{Threads: 4, Machines: 1}},
//	    SLA:        graphalytics.SpecDuration(time.Minute),
//	}
//	s := graphalytics.NewSession()
//	plan, _ := s.Compile(spec)
//	results, _ := s.RunPlan(ctx, plan)

// BenchSpec is a declarative benchmark definition, the input of Compile.
type BenchSpec = core.BenchSpec

// Sweep is one cross-product unit of a BenchSpec.
type Sweep = core.Sweep

// DatasetSelector selects catalog datasets by ID or by maximum scale
// class.
type DatasetSelector = core.DatasetSelector

// ResourceSpec is one point of a resource sweep (threads, machines,
// memory budget).
type ResourceSpec = core.ResourceSpec

// SpecDuration is the duration type spec files use: it marshals as a Go
// duration string ("30s") and accepts integer nanoseconds.
type SpecDuration = core.Duration

// ValidationPolicy selects how a plan's outputs are checked.
type ValidationPolicy = core.ValidationPolicy

// The validation policies.
const (
	ValidationInherit   = core.ValidationInherit
	ValidationReference = core.ValidationReference
	ValidationNone      = core.ValidationNone
)

// Plan is a compiled benchmark: ordered jobs grouped into deployments.
type Plan = core.Plan

// Deployment is one shared-upload group of a plan.
type Deployment = core.Deployment

// CompileSpec expands a spec into a plan using the default graph store;
// Session.Compile resolves dataset selectors through the session's store
// instead.
func CompileSpec(spec BenchSpec) (*Plan, error) { return core.CompileSpec(spec, nil) }

// PlanFromSpecs builds a plan from an explicit job list, preserving order
// and grouping jobs into shared-upload deployments.
func PlanFromSpecs(name string, specs []JobSpec) *Plan { return core.PlanFromSpecs(name, specs) }

// LoadSpec reads a JSON benchmark spec from a file.
func LoadSpec(path string) (*BenchSpec, error) { return core.LoadSpec(path) }

// DecodeSpec reads a JSON benchmark spec from a reader under the same
// strict unknown-field rules as LoadSpec.
func DecodeSpec(r io.Reader) (*BenchSpec, error) { return core.DecodeSpec(r) }

// WriteSpec serializes a spec as indented JSON.
func WriteSpec(w io.Writer, sp *BenchSpec) error { return core.WriteSpec(w, sp) }

// Sink consumes recorded job results in commit order; see core.Sink for
// the contract.
type Sink = core.Sink

// ErrSink marks sink-delivery failures in returned errors: the jobs
// completed, only delivery failed. Use errors.Is to keep sweeping.
var ErrSink = core.ErrSink

// SinkOnly reports whether err consists solely of sink-delivery
// failures — the run's work is intact, only delivery failed.
func SinkOnly(err error) bool { return core.SinkOnly(err) }

// SinkFunc adapts a function to the Sink interface.
type SinkFunc = core.SinkFunc

// ReportSink accumulates results into a rendered Report.
type ReportSink = core.ReportSink

// WithSink adds a result sink to a session (repeatable).
func WithSink(k Sink) Option { return core.WithSink(k) }

// WithUploadSharing toggles RunPlan's per-deployment upload lease
// (default on); off restores per-job uploads as the measurement baseline.
func WithUploadSharing(on bool) Option { return core.WithUploadSharing(on) }

// NewJSONLSink streams each result to w as one JSON object per line.
func NewJSONLSink(w io.Writer) Sink { return core.NewJSONLSink(w) }

// DBSink appends every result to an extra results database.
func DBSink(db *ResultsDB) Sink { return core.DBSink(db) }

// MultiSink fans results out to several sinks.
func MultiSink(sinks ...Sink) Sink { return core.MultiSink(sinks...) }

// NewReportSink returns a sink rendering results as a report table.
func NewReportSink(id, title string) *ReportSink { return core.NewReportSink(id, title) }

// Experiment spec builders: the declarative form of each experiment's job
// matrix (compile them for dry-run listings, or run the Session methods,
// which compile the same specs internally).
func DatasetVarietySpec(cfg ExperimentConfig) BenchSpec   { return core.DatasetVarietySpec(cfg) }
func AlgorithmVarietySpec(cfg ExperimentConfig) BenchSpec { return core.AlgorithmVarietySpec(cfg) }
func VerticalScalabilitySpec(cfg ExperimentConfig) BenchSpec {
	return core.VerticalScalabilitySpec(cfg)
}
func StrongScalingSpec(cfg ExperimentConfig) BenchSpec     { return core.StrongScalingSpec(cfg) }
func WeakScalingSpec(cfg ExperimentConfig) BenchSpec       { return core.WeakScalingSpec(cfg) }
func StressTestSpec(cfg ExperimentConfig) BenchSpec        { return core.StressTestSpec(cfg) }
func VariabilitySpec(cfg ExperimentConfig) BenchSpec       { return core.VariabilitySpec(cfg) }
func MakespanBreakdownSpec(cfg ExperimentConfig) BenchSpec { return core.MakespanBreakdownSpec(cfg) }
