package graphalytics

import (
	"context"

	"graphalytics/internal/core"
	"graphalytics/internal/graph"
	"graphalytics/internal/graphstore"
	"graphalytics/internal/workload"
)

// The graph store is the harness's dataset materialization layer: per-key
// single-flight, an in-memory LRU bounded by a byte budget, and optional
// on-disk binary CSR snapshots keyed by dataset fingerprint, so warmed
// runs (and later processes) skip generator work entirely. Sessions use
// the process-wide store by default; WithCacheDir or WithGraphStore route
// them through a snapshot-backed or shared one.

// GraphStore caches materialized graphs; construct with NewGraphStore.
type GraphStore = graphstore.Store

// GraphStoreOptions configure a GraphStore: memory budget, snapshot
// directory, event sink.
type GraphStoreOptions = graphstore.Options

// GraphStoreEvent is a store-side notification (evictions, snapshot
// writes, corrupt snapshots).
type GraphStoreEvent = graphstore.Event

// GraphStoreResult reports how a store load materialized its graph.
type GraphStoreResult = graphstore.Result

// DatasetSource says where a dataset load found its graph.
type DatasetSource = graphstore.Source

// The dataset sources, as reported by EventDatasetMaterialized events and
// store results.
const (
	SourceMemory   = graphstore.SourceMemory
	SourceSnapshot = graphstore.SourceSnapshot
	SourceBuilt    = graphstore.SourceBuilt
)

// NewGraphStore returns an empty graph store.
func NewGraphStore(opts GraphStoreOptions) *GraphStore { return graphstore.New(opts) }

// WithGraphStore routes a session's dataset loads through st; sessions
// sharing a store share its cache.
func WithGraphStore(st *GraphStore) Option { return core.WithGraphStore(st) }

// WithCacheDir gives a session a dedicated store persisting binary CSR
// snapshots under dir, so repeated runs — including separate processes —
// load snapshots instead of re-generating datasets.
func WithCacheDir(dir string) Option { return core.WithCacheDir(dir) }

// LoadDatasetFrom materializes a catalog dataset through the given store.
func LoadDatasetFrom(s *GraphStore, id string) (*Graph, error) {
	return workload.LoadFrom(s, id)
}

// WarmCatalog materializes every catalog dataset through the store on a
// bounded worker pool — the programmatic face of the CLI's warm
// subcommand. onEach (optional) receives each dataset's outcome.
func WarmCatalog(ctx context.Context, s *GraphStore, parallel int, onEach func(id string, r GraphStoreResult, err error)) error {
	return workload.Warm(ctx, s, parallel, onEach)
}

// ErrBadSnapshot wraps every snapshot decode failure caused by the bytes
// themselves; stores treat it as a cache miss.
var ErrBadSnapshot = graph.ErrBadSnapshot

// SaveGraphSnapshot writes g to path in the versioned binary CSR snapshot
// format (atomically: temp file + rename).
func SaveGraphSnapshot(path string, g *Graph) error { return graph.WriteSnapshotFile(path, g) }

// LoadGraphSnapshot reads a graph written by SaveGraphSnapshot.
func LoadGraphSnapshot(path string) (*Graph, error) { return graph.ReadSnapshotFile(path) }
