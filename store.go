package graphalytics

import (
	"context"

	"graphalytics/internal/core"
	"graphalytics/internal/graph"
	"graphalytics/internal/graphstore"
	"graphalytics/internal/workload"
)

// The graph store is the harness's dataset materialization layer: per-key
// single-flight, an in-memory LRU bounded by a byte budget, and optional
// on-disk binary CSR snapshots keyed by dataset fingerprint, so warmed
// runs (and later processes) skip generator work entirely. Sessions use
// the process-wide store by default; WithCacheDir or WithGraphStore route
// them through a snapshot-backed or shared one.

// GraphStore caches materialized graphs; construct with NewGraphStore.
type GraphStore = graphstore.Store

// GraphStoreOptions configure a GraphStore: memory budget, snapshot
// directory, event sink.
type GraphStoreOptions = graphstore.Options

// GraphStoreEvent is a store-side notification (evictions, snapshot
// writes, corrupt snapshots).
type GraphStoreEvent = graphstore.Event

// GraphStoreResult reports how a store load materialized its graph.
type GraphStoreResult = graphstore.Result

// DatasetSource says where a dataset load found its graph.
type DatasetSource = graphstore.Source

// The dataset sources, as reported by EventDatasetMaterialized events and
// store results.
const (
	SourceMemory   = graphstore.SourceMemory
	SourceSnapshot = graphstore.SourceSnapshot
	SourceBuilt    = graphstore.SourceBuilt
)

// NewGraphStore returns an empty graph store.
func NewGraphStore(opts GraphStoreOptions) *GraphStore { return graphstore.New(opts) }

// WithGraphStore routes a session's dataset loads through st; sessions
// sharing a store share its cache.
func WithGraphStore(st *GraphStore) Option { return core.WithGraphStore(st) }

// WithCacheDir gives a session a dedicated store persisting binary CSR
// snapshots under dir, so repeated runs — including separate processes —
// load snapshots instead of re-generating datasets.
func WithCacheDir(dir string) Option { return core.WithCacheDir(dir) }

// WithMappedSnapshots makes the WithCacheDir store serve warm v2
// snapshots as mmap-backed graphs: open cost is O(header) and pages stay
// reclaimable by the OS, so sessions can run graphs larger than RAM.
// Engine outputs are identical to heap-resident runs.
func WithMappedSnapshots(on bool) Option { return core.WithMappedSnapshots(on) }

// LoadDatasetFrom materializes a catalog dataset through the given store.
func LoadDatasetFrom(s *GraphStore, id string) (*Graph, error) {
	return workload.LoadFrom(s, id)
}

// WarmCatalog materializes every catalog dataset through the store on a
// bounded worker pool — the programmatic face of the CLI's warm
// subcommand. onEach (optional) receives each dataset's outcome.
func WarmCatalog(ctx context.Context, s *GraphStore, parallel int, onEach func(id string, r GraphStoreResult, err error)) error {
	return workload.Warm(ctx, s, parallel, onEach)
}

// WarmDatasets is WarmCatalog over an explicit dataset-ID list. It is
// the way to materialize out-of-core XL datasets (e.g. "XL22"), which
// the catalog sweep skips: with a snapshot directory they stream through
// the spill-to-disk builder and never hold their edge list in memory.
func WarmDatasets(ctx context.Context, s *GraphStore, parallel int, ids []string, onEach func(id string, r GraphStoreResult, err error)) error {
	return workload.WarmIDs(ctx, s, parallel, ids, onEach)
}

// ErrBadSnapshot wraps every snapshot decode failure caused by the bytes
// themselves; stores treat it as a cache miss.
var ErrBadSnapshot = graph.ErrBadSnapshot

// SaveGraphSnapshot writes g to path in the versioned binary CSR snapshot
// format (atomically: temp file + rename).
func SaveGraphSnapshot(path string, g *Graph) error { return graph.WriteSnapshotFile(path, g) }

// LoadGraphSnapshot reads a graph written by SaveGraphSnapshot.
func LoadGraphSnapshot(path string) (*Graph, error) { return graph.ReadSnapshotFile(path) }

// MapGraphSnapshot opens a v2 snapshot as an mmap-backed graph: the
// header is validated eagerly, the CSR arrays are served zero-copy from
// the page cache, and open cost is O(header) regardless of graph size.
// Release the graph with Close when done. Fails with ErrBadSnapshot on
// v1 files and ErrMapUnsupported off Linux/macOS — fall back to
// LoadGraphSnapshot.
func MapGraphSnapshot(path string) (*Graph, error) { return graph.MapSnapshotFile(path) }

// ErrMapUnsupported reports that snapshot mapping is unavailable on this
// platform; use LoadGraphSnapshot instead.
var ErrMapUnsupported = graph.ErrMapUnsupported
