// Quickstart: build a small graph, run BFS and PageRank on one of the
// engines, validate the output against the reference implementation, and
// finally run a fully harnessed benchmark job through the context-first
// Session API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphalytics"
)

func main() {
	// A small directed friendship/mention graph. Vertices are implicit
	// from edges; vertex 6 is isolated and added explicitly.
	b := graphalytics.NewBuilder(true, false)
	b.SetName("quickstart")
	b.AddVertex(6)
	for _, e := range []graphalytics.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 0}, {Src: 3, Dst: 4},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	} {
		b.AddEdge(e.Src, e.Dst)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatalf("build graph: %v", err)
	}
	fmt.Println(g)

	params := graphalytics.Params{Source: 0, Iterations: 10}

	// Run BFS on the hand-tuned native engine.
	res, err := graphalytics.Run(context.Background(), "native", g, graphalytics.BFS, params,
		graphalytics.RunConfig{Threads: 2})
	if err != nil {
		log.Fatalf("run BFS: %v", err)
	}
	fmt.Printf("\nBFS from vertex %d (Tproc %v):\n", params.Source, res.ProcessingTime)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := res.Output.Int[v]
		if d == graphalytics.Unreachable {
			fmt.Printf("  vertex %d: unreachable\n", g.VertexID(v))
		} else {
			fmt.Printf("  vertex %d: %d hops\n", g.VertexID(v), d)
		}
	}

	// Validate against the reference implementation — the benchmark's
	// definition of correctness.
	want, err := graphalytics.Reference(g, graphalytics.BFS, params)
	if err != nil {
		log.Fatalf("reference: %v", err)
	}
	if rep := graphalytics.Validate(res.Output, want, g); !rep.OK {
		log.Fatalf("validation failed: %v", rep.Error())
	}
	fmt.Println("BFS output validated against the reference implementation.")

	// PageRank on every registered platform: all engines agree.
	fmt.Println("\nPageRank (top 3 vertices) per platform:")
	for _, name := range graphalytics.Platforms() {
		p, err := graphalytics.PlatformByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if !p.Supports(graphalytics.PR) {
			continue
		}
		res, err := graphalytics.Run(context.Background(), name, g, graphalytics.PR, params,
			graphalytics.RunConfig{Threads: 2})
		if err != nil {
			log.Fatalf("run PR on %s: %v", name, err)
		}
		best := topRanked(res.Output.Float, 3)
		fmt.Printf("  %-9s (%-11s): ", name, graphalytics.PaperName(name))
		for _, v := range best {
			fmt.Printf("v%d=%.4f ", g.VertexID(v), res.Output.Float[v])
		}
		fmt.Println()
	}

	// Finally, the harness proper: declare a benchmark spec, compile it
	// into an explicit plan, and run the plan through a Session — which
	// adds SLA enforcement, validation against a cached reference and a
	// results database, and pays one graph upload per deployment group
	// (here: one upload for all three algorithms).
	spec := graphalytics.BenchSpec{
		Name:       "quickstart",
		Platforms:  []string{"native"},
		Datasets:   graphalytics.DatasetSelector{IDs: []string{"R1"}},
		Algorithms: []graphalytics.Algorithm{graphalytics.BFS, graphalytics.PR, graphalytics.WCC},
		Configs:    []graphalytics.ResourceSpec{{Threads: 2, Machines: 1}},
		SLA:        graphalytics.SpecDuration(30 * time.Second),
	}
	s := graphalytics.NewSession()
	plan, err := s.Compile(spec)
	if err != nil {
		log.Fatalf("compile spec: %v", err)
	}
	fmt.Printf("\ncompiled plan %s: %d jobs in %d deployment(s)\n", plan.Name, len(plan.Jobs), len(plan.Deployments))
	results, err := s.RunPlan(context.Background(), plan)
	if err != nil {
		log.Fatalf("run plan: %v", err)
	}
	for _, job := range results {
		shared := ""
		if job.UploadShared {
			shared = " (shared)"
		}
		fmt.Printf("  %s on R1: status=%s upload=%v%s makespan=%v validated=%v\n",
			job.Spec.Algorithm, job.Status, job.UploadTime, shared, job.Makespan, job.ValidationOK)
	}
	fmt.Printf("results database now holds %d record(s)\n", s.DB().Len())
}

// topRanked returns the indices of the k largest values.
func topRanked(vals []float64, k int) []int32 {
	idx := make([]int32, len(vals))
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < k && i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
