// Scalability study: run the benchmark's vertical (threads) and strong
// horizontal (machines) scalability experiments on one dataset and print
// speedup tables, the way Section 4.3-4.4 of the paper reports them.
//
// The example uses the context-first Session API: jobs of each sweep are
// scheduled on a bounded worker pool, progress streams through an
// Observer, and Ctrl-C cancels the remaining jobs cleanly.
//
// Run with: go run ./examples/scalability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"graphalytics"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	progress := graphalytics.ObserverFunc(func(e graphalytics.Event) {
		if e.Type == graphalytics.EventJobFinished { // Result is always set on this event

			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s/%s t=%d m=%d: %s\n",
				e.Index+1, e.Total, e.Spec.Platform, e.Spec.Dataset,
				e.Spec.Algorithm, e.Spec.Threads, e.Spec.Machines, e.Result.Status)
		}
	})
	s := graphalytics.NewSession(
		graphalytics.WithSLA(time.Minute),
		graphalytics.WithParallelism(4),
		graphalytics.WithObserver(progress),
	)

	// Vertical: one machine, growing thread count, every platform. The
	// experiment is a spec builder — preview what it compiles to before
	// running it: each (platform, threads) deployment uploads once and
	// runs both algorithms on the shared handle.
	vertCfg := graphalytics.ExperimentConfig{
		Platforms:   graphalytics.SingleMachinePlatforms(),
		ThreadSweep: []int{1, 2, 4, 8},
	}
	plan, err := s.Compile(graphalytics.VerticalScalabilitySpec(vertCfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vertical scalability (BFS + PR on D300, 1 machine): %d jobs, %d uploads\n",
		len(plan.Jobs), len(plan.Deployments))
	rep, err := s.VerticalScalability(ctx, vertCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	speedups := s.VerticalSpeedupReport(graphalytics.ExperimentConfig{
		Platforms: graphalytics.SingleMachinePlatforms(),
	})
	if err := speedups.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Strong horizontal: constant dataset, growing machine count,
	// distributed platforms only.
	fmt.Println("Strong horizontal scalability (BFS + PR on D1000):")
	strong, err := s.StrongScaling(ctx, graphalytics.ExperimentConfig{
		Platforms:    graphalytics.DistributedPlatforms(),
		MachineSweep: []int{1, 2, 4, 8},
		Threads:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := strong.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The distributed engines pay modeled network time per synchronization")
	fmt.Println("round, so speedup flattens as communication grows with the machine count.")
}
