// Scalability study: run the benchmark's vertical (threads) and strong
// horizontal (machines) scalability experiments on one dataset and print
// speedup tables, the way Section 4.3-4.4 of the paper reports them.
//
// Run with: go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"graphalytics"
)

func main() {
	r := graphalytics.NewRunner()
	r.SLA = time.Minute

	// Vertical: one machine, growing thread count, every platform.
	fmt.Println("Vertical scalability (BFS + PR on D300, 1 machine):")
	rep, err := graphalytics.VerticalScalability(r, graphalytics.SingleMachinePlatforms(), []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	speedups := graphalytics.VerticalSpeedupReport(r.DB, graphalytics.SingleMachinePlatforms())
	if err := speedups.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Strong horizontal: constant dataset, growing machine count,
	// distributed platforms only.
	fmt.Println("Strong horizontal scalability (BFS + PR on D1000):")
	strong, err := graphalytics.StrongScaling(r, graphalytics.DistributedPlatforms(), []int{1, 2, 4, 8}, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := strong.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The distributed engines pay modeled network time per synchronization")
	fmt.Println("round, so speedup flattens as communication grows with the machine count.")
}
