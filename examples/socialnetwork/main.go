// Social-network analysis: generate two LDBC Datagen graphs with
// different target clustering coefficients (the paper's Figure 2 shows
// 0.05 vs 0.3), detect communities with CDLP and measure LCC, showing that
// the tunable generator controls community definition.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"graphalytics"
)

func main() {
	// One interrupt-aware context drives every engine run below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, targetCC := range []float64{0.05, 0.3} {
		res, err := graphalytics.GenerateSocialNetwork(graphalytics.DatagenConfig{
			ScaleFactor: 30,
			TargetCC:    targetCC,
			Seed:        42,
			Weighted:    true,
		})
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		g := res.Graph
		fmt.Printf("target CC %.2f: %v (generated in %v, %d raw edges, %d duplicates removed)\n",
			targetCC, g, res.Stats.TotalTime, res.Stats.RawEdges, res.Stats.Duplicates)

		params := graphalytics.Params{Iterations: 10}

		// Measure the average local clustering coefficient with the LCC
		// algorithm on the matrix engine.
		lcc, err := graphalytics.Run(ctx, "spmv-s", g, graphalytics.LCC, params,
			graphalytics.RunConfig{Threads: 4})
		if err != nil {
			log.Fatalf("LCC: %v", err)
		}
		var sum float64
		for _, v := range lcc.Output.Float {
			sum += v
		}
		fmt.Printf("  mean LCC: %.3f (Tproc %v)\n", sum/float64(g.NumVertices()), lcc.ProcessingTime)

		// Detect communities with CDLP on the GAS engine.
		cdlp, err := graphalytics.Run(ctx, "gas", g, graphalytics.CDLP, params,
			graphalytics.RunConfig{Threads: 4})
		if err != nil {
			log.Fatalf("CDLP: %v", err)
		}
		sizes := make(map[int64]int)
		for _, label := range cdlp.Output.Int {
			sizes[label]++
		}
		largest := 0
		for _, s := range sizes {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("  CDLP communities: %d (largest %d vertices, Tproc %v)\n",
			len(sizes), largest, cdlp.ProcessingTime)

		// Cross-check: both engines must agree with the reference.
		want, err := graphalytics.Reference(g, graphalytics.CDLP, params)
		if err != nil {
			log.Fatal(err)
		}
		if rep := graphalytics.Validate(cdlp.Output, want, g); !rep.OK {
			log.Fatalf("CDLP validation failed: %v", rep.Error())
		}
		fmt.Println("  CDLP output validated against the reference.")
		fmt.Println()
	}
	fmt.Println("A higher target clustering coefficient yields a higher measured mean")
	fmt.Println("LCC and better-defined communities, reproducing the paper's Figure 2.")
}
