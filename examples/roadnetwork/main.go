// Road-network routing: build a weighted grid with highways, run SSSP on
// every platform that supports it, compare processing times and verify all
// engines agree on the distances.
//
// Run with: go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"

	"graphalytics"
)

const side = 60 // 3600 intersections

func main() {
	// One interrupt-aware context drives every engine run below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := buildRoadNetwork()
	if err != nil {
		log.Fatalf("build road network: %v", err)
	}
	fmt.Println(g)

	params := graphalytics.Params{Source: 0}
	want, err := graphalytics.Reference(g, graphalytics.SSSP, params)
	if err != nil {
		log.Fatalf("reference SSSP: %v", err)
	}

	fmt.Printf("\n%-9s %-12s %12s  %s\n", "engine", "paper name", "Tproc", "validated")
	for _, name := range graphalytics.Platforms() {
		p, err := graphalytics.PlatformByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if !p.Supports(graphalytics.SSSP) {
			fmt.Printf("%-9s %-12s %12s  %s\n", name, graphalytics.PaperName(name), "-", "not supported")
			continue
		}
		res, err := graphalytics.Run(ctx, name, g, graphalytics.SSSP, params,
			graphalytics.RunConfig{Threads: 4})
		if err != nil {
			log.Fatalf("SSSP on %s: %v", name, err)
		}
		rep := graphalytics.Validate(res.Output, want, g)
		status := "ok"
		if !rep.OK {
			status = rep.FirstDiff
		}
		fmt.Printf("%-9s %-12s %12v  %s\n", name, graphalytics.PaperName(name), res.ProcessingTime, status)
	}

	// Report the farthest reachable intersection.
	far, dist := 0, 0.0
	for v, d := range want.Float {
		if !math.IsInf(d, 1) && d > dist {
			far, dist = v, d
		}
	}
	fmt.Printf("\nfarthest intersection from depot: (%d,%d) at travel cost %.1f\n",
		far%side, far/side, dist)
}

// buildRoadNetwork creates a grid of local roads with a sparse overlay of
// fast highways along every tenth row and column.
func buildRoadNetwork() (*graphalytics.Graph, error) {
	b := graphalytics.NewBuilder(false, true)
	b.SetName("road-grid")
	id := func(x, y int) int64 { return int64(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			b.AddVertex(id(x, y))
			cost := 1.0 + float64((x*7+y*13)%5) // local street
			if y%10 == 0 {
				cost = 0.3 // east-west highway
			}
			if x+1 < side {
				b.AddWeightedEdge(id(x, y), id(x+1, y), cost)
			}
			cost = 1.0 + float64((x*3+y*11)%5)
			if x%10 == 0 {
				cost = 0.3 // north-south highway
			}
			if y+1 < side {
				b.AddWeightedEdge(id(x, y), id(x, y+1), cost)
			}
		}
	}
	return b.Build()
}
