// Package graphalytics is a Go implementation of LDBC Graphalytics, the
// industrial-grade benchmark for graph analysis platforms (Iosup et al.,
// VLDB 2016). It bundles:
//
//   - the benchmark specification: six deterministic core algorithms (BFS,
//     PageRank, weakly connected components, community detection by label
//     propagation, local clustering coefficient, single-source shortest
//     paths), reference implementations and output validation;
//   - the workload: a dataset catalog with seeded stand-in generators for
//     the paper's real-world graphs, the LDBC Datagen social-network
//     generator with a tunable clustering coefficient, and the Graph500
//     Kronecker generator;
//   - six graph-analysis engines spanning the programming models the paper
//     evaluates (vertex-centric BSP, RDD dataflow, gather-apply-scatter,
//     sparse matrix, hand-tuned native, adaptive push-pull);
//   - the harness: job orchestration with SLA enforcement, a results
//     database, Granula performance archives, and the full experiment
//     suite of the paper (baseline, scalability, robustness, self-test).
//
// This package is the public facade; see the examples directory for
// runnable entry points and DESIGN.md for the architecture.
package graphalytics

import (
	"context"
	"fmt"
	"time"

	"graphalytics/internal/algorithms"
	"graphalytics/internal/graph"
	"graphalytics/internal/platform"
	"graphalytics/internal/platforms"
	"graphalytics/internal/validation"
)

func init() { platforms.RegisterAll() }

// Graph is an immutable graph in the Graphalytics data model.
type Graph = graph.Graph

// Builder assembles graphs; see NewBuilder.
type Builder = graph.Builder

// BuildOptions control duplicate-edge and self-loop handling.
type BuildOptions = graph.BuildOptions

// Edge is an edge in external-identifier space.
type Edge = graph.Edge

// Algorithm names one of the six core algorithms.
type Algorithm = algorithms.Algorithm

// The six core Graphalytics algorithms.
const (
	BFS  = algorithms.BFS
	PR   = algorithms.PR
	WCC  = algorithms.WCC
	CDLP = algorithms.CDLP
	LCC  = algorithms.LCC
	SSSP = algorithms.SSSP
)

// Algorithms lists the six core algorithms in benchmark order.
var Algorithms = algorithms.All

// Unreachable is the BFS output value for unreachable vertices.
const Unreachable = algorithms.Unreachable

// Params carries per-run algorithm parameters (source vertex, iteration
// counts, damping factor).
type Params = algorithms.Params

// Output holds per-vertex algorithm results.
type Output = algorithms.Output

// Platform is the driver interface of a graph-analysis engine.
type Platform = platform.Platform

// RunConfig selects the resources of the system under test.
type RunConfig = platform.RunConfig

// Result is the outcome of executing one algorithm job on a platform.
type Result = platform.Result

// NewBuilder returns a Builder for a directed or undirected, optionally
// weighted graph.
func NewBuilder(directed, weighted bool) *Builder { return graph.NewBuilder(directed, weighted) }

// FromEdges builds a graph from an edge list, adding endpoint vertices
// implicitly.
func FromEdges(name string, directed, weighted bool, edges []Edge, opts BuildOptions) (*Graph, error) {
	return graph.FromEdges(name, directed, weighted, edges, opts)
}

// LoadGraph reads a graph from vertex/edge files in the Graphalytics text
// format.
func LoadGraph(vPath, ePath string, directed, weighted bool) (*Graph, error) {
	return graph.LoadVE(vPath, ePath, directed, weighted, graph.BuildOptions{})
}

// SaveGraph writes a graph in the Graphalytics text format.
func SaveGraph(g *Graph, vPath, ePath string) error { return graph.SaveVE(g, vPath, ePath) }

// Platforms returns the names of the registered engines.
func Platforms() []string { return platform.Names() }

// PlatformByName looks up a registered engine.
func PlatformByName(name string) (Platform, error) { return platform.Get(name) }

// PaperName maps an engine name to the platform it stands in for in the
// paper's evaluation (Table 5), e.g. "pregel" -> "Giraph".
func PaperName(engine string) string {
	if n, ok := platforms.PaperName[engine]; ok {
		return n
	}
	return engine
}

// Run executes one algorithm on one platform end to end (upload, execute,
// free) and returns the platform result. The context gates the whole job:
// all bundled engines honor it during upload too (they implement
// platform.ContextUploader), so a deadline or cancellation interrupts a
// pathological upload instead of waiting it out. It is the simplest entry
// point:
//
//	res, err := graphalytics.Run(ctx, "native", g, graphalytics.BFS,
//	    graphalytics.Params{Source: 1}, graphalytics.RunConfig{Threads: 4})
func Run(ctx context.Context, platformName string, g *Graph, a Algorithm, p Params, cfg RunConfig) (*Result, error) {
	pl, err := platform.Get(platformName)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	up, err := platform.UploadContext(ctx, pl, g, cfg)
	if err != nil {
		return nil, fmt.Errorf("graphalytics: upload to %s: %w", platformName, err)
	}
	defer up.Free()
	return pl.Execute(ctx, up, a, p)
}

// RunWithBudget is Run bounded by an SLA-style makespan budget layered
// onto ctx: the deadline covers upload plus execution, and cancelling ctx
// aborts the job early.
func RunWithBudget(ctx context.Context, platformName string, g *Graph, a Algorithm, p Params, cfg RunConfig, budget time.Duration) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	return Run(bctx, platformName, g, a, p, cfg)
}

// RunWithTimeout is Run with an SLA-style makespan budget.
//
// Deprecated: use RunWithBudget, which takes a context, so callers can
// also cancel the job early; RunWithTimeout cannot be interrupted.
func RunWithTimeout(platformName string, g *Graph, a Algorithm, p Params, cfg RunConfig, budget time.Duration) (*Result, error) {
	return RunWithBudget(context.Background(), platformName, g, a, p, cfg, budget)
}

// Reference computes the reference output that defines correctness for an
// algorithm on a graph. Reference kernels run in parallel on the shared
// internal fork-join runtime with automatic worker sizing; the output is
// bit-identical to the sequential reference at any worker count (see
// WithReferenceParallelism to pin the worker count on a Session).
func Reference(g *Graph, a Algorithm, p Params) (*Output, error) {
	return algorithms.RunReference(g, a, p)
}

// ValidationReport is the outcome of validating an output against the
// reference.
type ValidationReport = validation.Report

// Validate checks a platform output against the reference output.
func Validate(got, want *Output, g *Graph) ValidationReport {
	return validation.Validate(got, want, g.IDs())
}
