#!/usr/bin/env bash
# bench.sh — run the engine message-plane and plan-pipeline benchmarks and
# record a benchstat-friendly snapshot in BENCH_<date>.json at the
# repository root.
#
# The "benchstat" field holds the raw `go test -bench` lines, so
#   jq -r '.benchstat[]' BENCH_2026-07-26.json > old.txt
#   jq -r '.benchstat[]' BENCH_2026-08-01.json > new.txt
#   benchstat old.txt new.txt
# compares two snapshots; the "results" field carries the same data
# parsed for scripting. Environment overrides:
#   BENCH      benchmark regexp        (default: engine Execute, plan pipeline,
#              SSSP/CDLP kernels, snapshot map-open vs heap-load, streamed build)
#   BENCHTIME  go test -benchtime      (default 3x)
#   COUNT      go test -count          (default 1; raise for benchstat CIs)
#   OUT        output file             (default BENCH_<date>.json)
set -euo pipefail
cd "$(dirname "$0")/.."

# The RefKernel sweeps cover the delta-stepping SSSP and frontier CDLP
# worker scaling alongside the engine Execute and plan-pipeline suites;
# the Snapshot trio records the mmap-vs-copying open gap and the
# out-of-core streamed build.
BENCH=${BENCH:-'BenchmarkEngineExecute|BenchmarkPlanSharedUpload|BenchmarkRefKernelSSSP|BenchmarkRefKernelCDLP|BenchmarkSnapshotMapOpen|BenchmarkSnapshotHeapLoad|BenchmarkBuilderStreamed'}
BENCHTIME=${BENCHTIME:-3x}
COUNT=${COUNT:-1}
OUT=${OUT:-BENCH_$(date +%F).json}

# Preflight: a tree that violates the determinism/zero-alloc/ctx-first
# contracts produces numbers not worth snapshotting.
echo "preflight: graphalint ./..."
go run ./cmd/graphalint ./...

raw=$(go test -run=NONE -bench="$BENCH" -benchtime="$BENCHTIME" -count="$COUNT" -benchmem . |
	grep -E '^(Benchmark|goos:|goarch:|pkg:|cpu:)')

awk -v date="$(date +%F)" -v goversion="$(go env GOVERSION)" \
	-v bench="$BENCH" -v benchtime="$BENCHTIME" -v count="$COUNT" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, goversion
	printf "  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"count\": %s,\n", jesc(bench), benchtime, count
	nres = 0; nraw = 0
}
{ rawline[nraw++] = $0 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { cpu = $0; sub(/^cpu: /, "", cpu) }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3; bytes = "null"; allocs = "null"
	for (i = 4; i <= NF; i++) {
		if ($i == "B/op") bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	res[nres++] = sprintf("{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		jesc(name), iters, ns, bytes, allocs)
}
END {
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, jesc(cpu)
	printf "  \"results\": [\n"
	for (i = 0; i < nres; i++) printf "    %s%s\n", res[i], (i < nres - 1 ? "," : "")
	printf "  ],\n  \"benchstat\": [\n"
	for (i = 0; i < nraw; i++) printf "    \"%s\"%s\n", jesc(rawline[i]), (i < nraw - 1 ? "," : "")
	printf "  ]\n}\n"
}' <<<"$raw" >"$OUT.tmp"

# Write-then-rename so a failure mid-emit can never leave a truncated
# snapshot behind under the final name.
mv "$OUT.tmp" "$OUT"
echo "wrote $OUT"
