#!/usr/bin/env bash
# bench.sh — run the engine message-plane and plan-pipeline benchmarks and
# record a benchstat-friendly snapshot in BENCH_<date>.json at the
# repository root.
#
# The "benchstat" field holds the raw `go test -bench` lines, so
#   jq -r '.benchstat[]' BENCH_2026-07-26.json > old.txt
#   jq -r '.benchstat[]' BENCH_2026-08-01.json > new.txt
#   benchstat old.txt new.txt
# compares two snapshots; the "results" field carries the same data
# parsed for scripting. Environment overrides:
#   BENCH      benchmark regexp        (default: engine Execute, plan pipeline,
#              SSSP/CDLP kernels, snapshot map-open vs heap-load, streamed build)
#   BENCHTIME  go test -benchtime      (default 3x)
#   COUNT      go test -count          (default 1; raise for benchstat CIs)
#   OUT        output file             (default BENCH_<date>.json)
#   ARCHIVE_DIR  content-addressed run archive (default .archive)
#
# Every snapshot is first sealed into the archive (`graphalytics
# archive commit-bench`), and BENCH_<date>.json is then *derived from
# the archived chunk* — the archive is the single source of truth; the
# dated file is its export. `graphalytics archive regress` diffs any
# two archived snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

# The RefKernel sweeps cover the delta-stepping SSSP and frontier CDLP
# worker scaling alongside the engine Execute and plan-pipeline suites;
# the Snapshot trio records the mmap-vs-copying open gap and the
# out-of-core streamed build.
BENCH=${BENCH:-'BenchmarkEngineExecute|BenchmarkPlanSharedUpload|BenchmarkRefKernelSSSP|BenchmarkRefKernelCDLP|BenchmarkSnapshotMapOpen|BenchmarkSnapshotHeapLoad|BenchmarkBuilderStreamed'}
BENCHTIME=${BENCHTIME:-3x}
COUNT=${COUNT:-1}
OUT=${OUT:-BENCH_$(date +%F).json}
ARCHIVE_DIR=${ARCHIVE_DIR:-.archive}

# Preflight: a tree that violates the determinism/zero-alloc/ctx-first
# contracts produces numbers not worth snapshotting.
echo "preflight: graphalint ./..."
go run ./cmd/graphalint ./...

raw=$(go test -run=NONE -bench="$BENCH" -benchtime="$BENCHTIME" -count="$COUNT" -benchmem . |
	grep -E '^(Benchmark|goos:|goarch:|pkg:|cpu:)')

awk -v date="$(date +%F)" -v goversion="$(go env GOVERSION)" \
	-v bench="$BENCH" -v benchtime="$BENCHTIME" -v count="$COUNT" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, goversion
	printf "  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"count\": %s,\n", jesc(bench), benchtime, count
	nres = 0; nraw = 0
}
{ rawline[nraw++] = $0 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { cpu = $0; sub(/^cpu: /, "", cpu) }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3; bytes = "null"; allocs = "null"
	for (i = 4; i <= NF; i++) {
		if ($i == "B/op") bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	res[nres++] = sprintf("{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		jesc(name), iters, ns, bytes, allocs)
}
END {
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, jesc(cpu)
	printf "  \"results\": [\n"
	for (i = 0; i < nres; i++) printf "    %s%s\n", res[i], (i < nres - 1 ? "," : "")
	printf "  ],\n  \"benchstat\": [\n"
	for (i = 0; i < nraw; i++) printf "    \"%s\"%s\n", jesc(rawline[i]), (i < nraw - 1 ? "," : "")
	printf "  ]\n}\n"
}' <<<"$raw" >"$OUT.tmp"

# Seal the snapshot into the content-addressed archive: the commit
# chains to the previous bench commit under a Merkle root, so history
# is tamper-evident and `archive regress` can diff any two snapshots.
commit=$(go run ./cmd/graphalytics archive commit-bench \
	-dir "$ARCHIVE_DIR" -name "bench/$(date +%F)" -in "$OUT.tmp")
rm "$OUT.tmp"

# Derive BENCH_<date>.json from the archived chunk — not from the raw
# emit — so the dated file is provably the archive's content, and
# write-then-rename so a failure mid-export can never leave a truncated
# snapshot behind under the final name.
go run ./cmd/graphalytics archive show \
	-dir "$ARCHIVE_DIR" -commit "$commit" -chunk bench.json >"$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "archived as commit $commit (dir $ARCHIVE_DIR)"
echo "wrote $OUT (exported from the archive)"
